//! Fault recovery above the disk: bounded retry with deterministic
//! backoff for transient timeouts, and bad-block remapping into a
//! per-track spare region for hard media errors.
//!
//! The FAST'05 adjacency model leaves fault handling to the storage
//! manager above the `GET_ADJACENT` interface, and this module is that
//! storage manager's recovery path. The division of labour:
//!
//! * the **disk** ([`multimap_disksim::FaultPlan`]) injects faults and
//!   reports them as typed errors, charging the wall-clock they burn;
//! * the **volume** retries transients (with a linearly growing,
//!   deterministic backoff) and remaps hard-failed blocks into spare
//!   sectors reserved at the tail of the failing block's own track,
//!   keeping track locality but giving up the adjacency guarantee for
//!   that block;
//! * the **query executor** consults [`RemapTable`] occupancy to route
//!   cells that lost adjacency through scheduled seeks instead of
//!   semi-sequential hops.
//!
//! All recovery time is reported in the per-request
//! [`FaultOutcome::recovery_ms`], so an event log still satisfies
//! `after.time_ms - before.time_ms == timing.total_ms() + recovery_ms`.

use std::collections::BTreeMap;

use multimap_disksim::{
    DiskError, DiskGeometry, DiskSim, FaultOutcome, Lbn, Request, RequestTiming,
};

use crate::error::LvmError;

/// Tunables for the volume's recovery path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryConfig {
    /// Retries allowed per physical segment before
    /// [`LvmError::RetriesExhausted`]. Must be at least the fault plan's
    /// consecutive-transient cap for recovery to be guaranteed.
    pub max_retries: u32,
    /// Backoff base: the `k`-th retry of a segment idles the disk for
    /// `k * backoff_ms` first (deterministic, so replays are exact).
    pub backoff_ms: f64,
    /// Spare sectors reserved at the tail of every track for bad-block
    /// remapping; [`LvmError::SpareExhausted`] when a track runs out.
    pub spare_per_track: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            max_retries: 4,
            backoff_ms: 1.0,
            spare_per_track: 4,
        }
    }
}

/// Cumulative recovery actions taken by one volume (or one disk of it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Transient timeouts absorbed.
    pub transients: u64,
    /// Retries issued (exactly one per absorbed transient).
    pub retries: u64,
    /// Media errors encountered.
    pub media_errors: u64,
    /// Bad blocks remapped into spares (one per media error, while
    /// spares last).
    pub remaps: u64,
    /// Slow reads absorbed.
    pub slow_reads: u64,
}

impl RecoveryStats {
    /// Accumulate another disk's stats.
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.transients += other.transients;
        self.retries += other.retries;
        self.media_errors += other.media_errors;
        self.remaps += other.remaps;
        self.slow_reads += other.slow_reads;
    }
}

/// Logical-to-physical indirection for remapped bad blocks.
///
/// Identity everywhere except blocks that hard-failed: those point into
/// the spare region at the tail of their own track (allocated last LBN
/// first). A remapped block keeps track locality but loses the
/// adjacency/sequential guarantee — the executor treats any cell
/// touching one as degraded.
#[derive(Clone, Debug, Default)]
pub struct RemapTable {
    forward: BTreeMap<Lbn, Lbn>,
    reverse: BTreeMap<Lbn, Lbn>,
    /// Spares handed out per track, keyed by the track's first LBN.
    used: BTreeMap<Lbn, u32>,
}

impl RemapTable {
    /// Number of remapped blocks.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether no block has been remapped.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Physical address of logical block `lbn` (identity unless
    /// remapped).
    #[inline]
    pub fn physical(&self, lbn: Lbn) -> Lbn {
        self.forward.get(&lbn).copied().unwrap_or(lbn)
    }

    /// Whether any logical block in `[lbn, lbn + nblocks)` is remapped
    /// (and has therefore lost its adjacency guarantee).
    pub fn overlaps(&self, lbn: Lbn, nblocks: u64) -> bool {
        self.forward.range(lbn..lbn + nblocks).next().is_some()
    }

    /// The remapped logical blocks, ascending.
    pub fn remapped(&self) -> impl Iterator<Item = (Lbn, Lbn)> + '_ {
        self.forward.iter().map(|(&l, &p)| (l, p))
    }

    /// The longest physically-contiguous prefix of the logical span
    /// `[start, start + remaining)`, as one physical request.
    fn first_segment(&self, start: Lbn, remaining: u64) -> Request {
        let phys = self.physical(start);
        let mut len = 1u64;
        while len < remaining && self.physical(start + len) == phys + len {
            len += 1;
        }
        Request::new(phys, len)
    }

    /// Remap the failing physical block `bad` to a fresh spare on the
    /// owning logical block's track. If `bad` is itself a spare that
    /// went bad, the original logical block is re-remapped.
    fn remap(
        &mut self,
        geom: &DiskGeometry,
        cfg: &RecoveryConfig,
        bad: Lbn,
    ) -> Result<Lbn, LvmError> {
        let logical = self.reverse.get(&bad).copied().unwrap_or(bad);
        let (first, last) = geom.track_boundaries(logical)?;
        let track_len = last - first + 1;
        loop {
            let used = self.used.entry(first).or_insert(0);
            if u64::from(*used) >= u64::from(cfg.spare_per_track).min(track_len) {
                return Err(LvmError::SpareExhausted { lbn: logical });
            }
            let spare = last - u64::from(*used);
            *used += 1;
            // A spare slot that coincides with the failing logical block
            // itself is useless; burn it and take the next.
            if spare == logical {
                continue;
            }
            if let Some(old) = self.forward.insert(logical, spare) {
                self.reverse.remove(&old);
            }
            self.reverse.insert(spare, logical);
            return Ok(spare);
        }
    }
}

/// Serve one *logical* request through the recovery path: rewrite it
/// through `remap` into physically-contiguous segments, retry transient
/// timeouts with deterministic backoff, and remap hard-failed blocks on
/// the fly. Returns the successful attempts' timing plus the
/// [`FaultOutcome`] accounting for everything else.
///
/// Unrecoverable conditions surface as [`LvmError::RetriesExhausted`] /
/// [`LvmError::SpareExhausted`]; malformed requests propagate the
/// underlying [`DiskError`] unchanged.
pub(crate) fn recovering_serve(
    geom: &DiskGeometry,
    cfg: &RecoveryConfig,
    remap: &mut RemapTable,
    stats: &mut RecoveryStats,
    sim: &mut DiskSim,
    req: Request,
) -> Result<(RequestTiming, FaultOutcome), LvmError> {
    if req.nblocks == 0 {
        return Err(LvmError::Disk(DiskError::EmptyRequest));
    }
    let start_ms = sim.state().time_ms;
    let slow_before = sim.fault_counts().slow_reads;
    let mut total = RequestTiming::default();
    let mut outcome = FaultOutcome::default();
    let mut segments_served = 0u32;
    let mut cursor = req.lbn;
    let mut remaining = req.nblocks;
    let mut attempts = 0u32;
    while remaining > 0 {
        let seg = remap.first_segment(cursor, remaining);
        // staticcheck: allow(no-direct-service) — this IS the recovery serve path: it must call the raw simulator to observe injected faults; outer callers all route through it.
        match sim.service(seg) {
            Ok(t) => {
                total.overhead_ms += t.overhead_ms;
                total.seek_ms += t.seek_ms;
                total.rotation_ms += t.rotation_ms;
                total.transfer_ms += t.transfer_ms;
                segments_served += 1;
                cursor += seg.nblocks;
                remaining -= seg.nblocks;
                attempts = 0;
            }
            Err(DiskError::TransientTimeout { .. }) => {
                outcome.transients += 1;
                stats.transients += 1;
                if attempts >= cfg.max_retries {
                    return Err(LvmError::RetriesExhausted {
                        lbn: seg.lbn,
                        attempts,
                    });
                }
                attempts += 1;
                outcome.retries += 1;
                stats.retries += 1;
                if cfg.backoff_ms > 0.0 {
                    sim.idle(cfg.backoff_ms * f64::from(attempts));
                }
            }
            Err(DiskError::MediaError { lbn: bad }) => {
                outcome.media_errors += 1;
                stats.media_errors += 1;
                remap.remap(geom, cfg, bad)?;
                outcome.remaps += 1;
                stats.remaps += 1;
                // Loop again: the next first_segment reflects the new
                // mapping. Blocks the failed command delivered before
                // hitting `bad` are conservatively re-read.
            }
            Err(e) => return Err(LvmError::Disk(e)),
        }
    }
    let slow_delta = sim.fault_counts().slow_reads - slow_before;
    outcome.slow_reads = slow_delta as u32;
    stats.slow_reads += slow_delta;
    outcome.extra_segments = segments_served.saturating_sub(1);
    if !outcome.is_clean() {
        // Everything the sim clock advanced beyond the successful
        // attempts' own components: failed attempts, probes, backoff,
        // and float residue from per-segment accumulation.
        outcome.recovery_ms = (sim.state().time_ms - start_ms) - total.total_ms();
    }
    Ok((total, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_disksim::{profiles, FaultPlan};

    fn geom() -> DiskGeometry {
        profiles::small()
    }

    #[test]
    fn remap_table_identity_by_default() {
        let t = RemapTable::default();
        assert!(t.is_empty());
        assert_eq!(t.physical(123), 123);
        assert!(!t.overlaps(0, 1_000));
        assert_eq!(t.first_segment(10, 5), Request::new(10, 5));
    }

    #[test]
    fn remap_allocates_track_tail_spares() {
        let g = geom();
        let cfg = RecoveryConfig::default();
        let mut t = RemapTable::default();
        let bad = 100u64;
        let (first, last) = g.track_boundaries(bad).unwrap();
        let spare = t.remap(&g, &cfg, bad).unwrap();
        assert_eq!(spare, last);
        assert_eq!(t.physical(bad), spare);
        assert!(t.overlaps(bad, 1));
        assert!((first..=last).contains(&spare), "spare stays on the track");
        // A bad spare re-remaps the original logical block.
        let spare2 = t.remap(&g, &cfg, spare).unwrap();
        assert_eq!(spare2, last - 1);
        assert_eq!(t.physical(bad), spare2);
        assert_eq!(t.len(), 1, "still one logical block remapped");
    }

    #[test]
    fn spares_exhaust_to_typed_error() {
        let g = geom();
        let cfg = RecoveryConfig {
            spare_per_track: 2,
            ..RecoveryConfig::default()
        };
        let mut t = RemapTable::default();
        t.remap(&g, &cfg, 100).unwrap();
        t.remap(&g, &cfg, 101).unwrap();
        let err = t.remap(&g, &cfg, 102).unwrap_err();
        assert!(matches!(err, LvmError::SpareExhausted { .. }), "{err:?}");
    }

    #[test]
    fn first_segment_splits_around_remapped_blocks() {
        let g = geom();
        let cfg = RecoveryConfig::default();
        let mut t = RemapTable::default();
        t.remap(&g, &cfg, 12).unwrap();
        let spare = t.physical(12);
        // [10, 16): 10-11 contiguous, 12 remapped, 13-15 contiguous.
        assert_eq!(t.first_segment(10, 6), Request::new(10, 2));
        assert_eq!(t.first_segment(12, 4), Request::new(spare, 1));
        assert_eq!(t.first_segment(13, 3), Request::new(13, 3));
    }

    #[test]
    fn recovering_serve_clean_request_is_untouched() {
        let g = geom();
        let cfg = RecoveryConfig::default();
        let mut remap = RemapTable::default();
        let mut stats = RecoveryStats::default();
        let mut sim = DiskSim::new(g.clone());
        let mut plain = DiskSim::new(g.clone());
        let req = Request::new(500, 8);
        let (t, o) =
            recovering_serve(&g, &cfg, &mut remap, &mut stats, &mut sim, req).unwrap();
        let tp = plain.service(req).unwrap();
        assert!(o.is_clean());
        assert_eq!(t.total_ms().to_bits(), tp.total_ms().to_bits());
        assert_eq!(stats, RecoveryStats::default());
    }

    #[test]
    fn recovering_serve_retries_transients() {
        let g = geom();
        let cfg = RecoveryConfig::default();
        let mut remap = RemapTable::default();
        let mut stats = RecoveryStats::default();
        let mut sim = DiskSim::new(g.clone());
        sim.set_fault_plan(
            FaultPlan::new(3)
                .with_transients(1.0, 5.0)
                .with_max_consecutive_transients(2),
        );
        let req = Request::new(500, 4);
        let before = sim.state().time_ms;
        let (t, o) =
            recovering_serve(&g, &cfg, &mut remap, &mut stats, &mut sim, req).unwrap();
        assert_eq!(o.transients, 2);
        assert_eq!(o.retries, 2);
        assert_eq!(stats.retries, 2);
        // The event-clock identity holds: elapsed == timing + recovery.
        let elapsed = sim.state().time_ms - before;
        assert!((elapsed - t.total_ms() - o.recovery_ms).abs() < 1e-9);
        // Recovery paid 2 timeouts + backoff 1x and 2x.
        assert!(o.recovery_ms >= 2.0 * 5.0 + 1.0 + 2.0 - 1e-9);
    }

    #[test]
    fn recovering_serve_remaps_media_errors() {
        let g = geom();
        let cfg = RecoveryConfig::default();
        let mut remap = RemapTable::default();
        let mut stats = RecoveryStats::default();
        let mut sim = DiskSim::new(g.clone());
        sim.set_fault_plan(FaultPlan::new(0).with_media_error(502));
        let req = Request::new(500, 6);
        let (_, o) =
            recovering_serve(&g, &cfg, &mut remap, &mut stats, &mut sim, req).unwrap();
        assert_eq!(o.media_errors, 1);
        assert_eq!(o.remaps, 1);
        assert!(o.extra_segments >= 1, "split around the remapped block");
        assert_eq!(remap.len(), 1);
        assert_ne!(remap.physical(502), 502);
        // A later read of the same span goes straight through the remap
        // with no further media errors.
        let (_, o2) =
            recovering_serve(&g, &cfg, &mut remap, &mut stats, &mut sim, req).unwrap();
        assert_eq!(o2.media_errors, 0);
        assert!(o2.extra_segments >= 1);
        assert_eq!(stats.media_errors, 1);
    }

    #[test]
    fn retries_exhausted_is_a_typed_error() {
        let g = geom();
        let cfg = RecoveryConfig {
            max_retries: 1,
            ..RecoveryConfig::default()
        };
        let mut remap = RemapTable::default();
        let mut stats = RecoveryStats::default();
        let mut sim = DiskSim::new(g.clone());
        sim.set_fault_plan(
            FaultPlan::new(3)
                .with_transients(1.0, 5.0)
                .with_max_consecutive_transients(3),
        );
        let err = recovering_serve(&g, &cfg, &mut remap, &mut stats, &mut sim, Request::single(0))
            .unwrap_err();
        assert!(matches!(err, LvmError::RetriesExhausted { .. }), "{err:?}");
    }
}
