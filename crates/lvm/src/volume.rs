//! The logical volume: a set of identical simulated disks behind the
//! adjacency-model interface.

use multimap_disksim::{
    adjacent_lbn, coalesce_sorted, service_batch_ascending_observed,
    service_batch_in_order_observed, service_batch_queued_sptf_observed,
    service_batch_sptf_observed, AccessStats, BatchTiming, DiskGeometry, DiskSim, Lbn, Request,
    RequestTiming, ServiceEvent, ServiceLog,
};
use parking_lot::Mutex;

use crate::error::{LvmError, Result};

/// How a batch of requests is ordered before being serviced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Serve exactly in the order given.
    InOrder,
    /// Sort ascending by LBN first (the storage manager's policy for
    /// linearised mappings, Section 5.2).
    AscendingLbn,
    /// Greedy shortest-positioning-time-first (the disk's internal
    /// scheduler; discovers semi-sequential paths on its own).
    Sptf,
    /// Queue-depth-limited SPTF: requests enter the disk queue in issue
    /// order and the disk serves the cheapest queued request — models
    /// SCSI tagged command queueing. Depth 1 is in-order service.
    QueuedSptf(usize),
}

/// Timing of a striped, multi-disk batch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VolumeBatchTiming {
    /// Per-disk batch timings (index = disk id).
    pub per_disk: Vec<BatchTiming>,
    /// Completion time of the slowest disk — what a caller waiting on all
    /// parallel I/O would observe.
    pub makespan_ms: f64,
}

impl VolumeBatchTiming {
    /// Total blocks transferred across all disks.
    pub fn blocks(&self) -> u64 {
        self.per_disk.iter().map(|b| b.blocks).sum()
    }

    /// Sum of busy time across all disks.
    pub fn total_busy_ms(&self) -> f64 {
        self.per_disk.iter().map(|b| b.total_ms).sum()
    }
}

/// A logical volume over one or more identical simulated disks.
///
/// All disks share a single [`DiskGeometry`]; addressing is explicit
/// (`disk` index + per-disk LBN), matching how the paper assigns each
/// dataset chunk to one disk and reports single-disk response times.
pub struct LogicalVolume {
    geometry: DiskGeometry,
    disks: Vec<Mutex<DiskSim>>,
}

impl LogicalVolume {
    /// Create a volume of `ndisks` identical disks.
    ///
    /// # Panics
    /// Panics if `ndisks` is zero.
    pub fn new(geometry: DiskGeometry, ndisks: usize) -> Self {
        assert!(ndisks > 0, "a volume needs at least one disk");
        let disks = (0..ndisks)
            .map(|_| Mutex::new(DiskSim::new(geometry.clone())))
            .collect();
        LogicalVolume { geometry, disks }
    }

    /// Number of disks in the volume.
    #[inline]
    pub fn num_disks(&self) -> usize {
        self.disks.len()
    }

    /// The shared disk geometry.
    #[inline]
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geometry
    }

    /// The `GET_ADJACENT` interface call: LBN of the `step`-th adjacent
    /// block of `lbn` (Section 3.2 of the paper).
    #[inline]
    pub fn get_adjacent(&self, lbn: Lbn, step: u32) -> multimap_disksim::Result<Lbn> {
        adjacent_lbn(&self.geometry, lbn, step)
    }

    /// The `GET_TRACK_BOUNDARIES` interface call: first and last LBN of
    /// the track containing `lbn`.
    #[inline]
    pub fn get_track_boundaries(&self, lbn: Lbn) -> multimap_disksim::Result<(Lbn, Lbn)> {
        self.geometry.track_boundaries(lbn)
    }

    /// The simulator behind `disk`, or [`LvmError::NoSuchDisk`].
    fn disk(&self, disk: usize) -> Result<&Mutex<DiskSim>> {
        self.disks.get(disk).ok_or(LvmError::NoSuchDisk {
            disk,
            ndisks: self.disks.len(),
        })
    }

    /// The number of adjacent blocks `D` each LBN has.
    #[inline]
    pub fn adjacency_limit(&self) -> u32 {
        self.geometry.adjacency_limit
    }

    /// Service one request on one disk.
    pub fn service(&self, disk: usize, req: Request) -> Result<RequestTiming> {
        // This IS the volume's service primitive; the observed batch paths
        // delegate to the sim through the same lock.
        // staticcheck: allow(no-direct-service) — the volume service primitive itself; conformance audits the observed paths.
        Ok(self.disk(disk)?.lock().service(req)?)
    }

    /// Service a batch on one disk under the given policy.
    pub fn service_batch(
        &self,
        disk: usize,
        requests: &[Request],
        policy: SchedulePolicy,
    ) -> Result<BatchTiming> {
        self.service_batch_observed(disk, requests, policy, &mut |_| {})
    }

    /// [`LogicalVolume::service_batch`] with a per-request observer: the
    /// scheduler emits one [`ServiceEvent`] per serviced request, so a
    /// conformance oracle can inspect every decision (admission rank,
    /// queue length, head state before/after, timing components).
    pub fn service_batch_observed(
        &self,
        disk: usize,
        requests: &[Request],
        policy: SchedulePolicy,
        observe: &mut dyn FnMut(ServiceEvent),
    ) -> Result<BatchTiming> {
        let mut sim = self.disk(disk)?.lock();
        let timing = match policy {
            SchedulePolicy::InOrder => service_batch_in_order_observed(&mut sim, requests, observe),
            SchedulePolicy::AscendingLbn => {
                service_batch_ascending_observed(&mut sim, requests, observe)
            }
            SchedulePolicy::Sptf => service_batch_sptf_observed(&mut sim, requests, observe),
            SchedulePolicy::QueuedSptf(depth) => {
                service_batch_queued_sptf_observed(&mut sim, requests, depth, observe)
            }
        }?;
        Ok(timing)
    }

    /// [`LogicalVolume::service_batch`] that collects every scheduler
    /// decision into a returned [`ServiceLog`].
    pub fn service_batch_logged(
        &self,
        disk: usize,
        requests: &[Request],
        policy: SchedulePolicy,
    ) -> Result<(BatchTiming, ServiceLog)> {
        let mut log = ServiceLog::new();
        let timing = self.service_batch_observed(disk, requests, policy, &mut log.recorder())?;
        Ok((timing, log))
    }

    /// Service a sorted, deduplicated LBN list on one disk, coalescing
    /// contiguous runs into multi-block requests first.
    pub fn service_sorted_lbns(
        &self,
        disk: usize,
        lbns: &[Lbn],
        policy: SchedulePolicy,
    ) -> Result<BatchTiming> {
        let requests = coalesce_sorted(lbns);
        self.service_batch(disk, &requests, policy)
    }

    /// Service one batch per disk "in parallel": each disk runs its batch
    /// independently and the makespan is the slowest disk's busy time.
    pub fn service_striped(
        &self,
        batches: &[(usize, Vec<Request>, SchedulePolicy)],
    ) -> Result<VolumeBatchTiming> {
        let mut per_disk = vec![BatchTiming::default(); self.disks.len()];
        for (disk, requests, policy) in batches {
            let t = self.service_batch(*disk, requests, *policy)?;
            per_disk[*disk].requests += t.requests;
            per_disk[*disk].blocks += t.blocks;
            per_disk[*disk].total_ms += t.total_ms;
        }
        let makespan_ms = per_disk.iter().map(|b| b.total_ms).fold(0.0, f64::max);
        Ok(VolumeBatchTiming {
            per_disk,
            makespan_ms,
        })
    }

    /// Accumulated statistics of one disk.
    pub fn stats(&self, disk: usize) -> Result<AccessStats> {
        Ok(*self.disk(disk)?.lock().stats())
    }

    /// Statistics merged across all disks.
    pub fn merged_stats(&self) -> AccessStats {
        let mut out = AccessStats::default();
        for d in &self.disks {
            out.merge(d.lock().stats());
        }
        out
    }

    /// Reset every disk (time, head position and statistics).
    pub fn reset(&self) {
        for d in &self.disks {
            d.lock().reset();
        }
    }

    /// Clear statistics on every disk without moving heads.
    pub fn reset_stats(&self) {
        for d in &self.disks {
            d.lock().reset_stats();
        }
    }

    /// Let every disk idle for `ms` (randomises rotational phase between
    /// queries, breaking artificial phase locking between runs).
    pub fn idle_all(&self, ms: f64) {
        for d in &self.disks {
            d.lock().idle(ms);
        }
    }

    /// Run a closure with mutable access to one disk's simulator (for
    /// callers that need custom scheduling).
    pub fn with_disk<T>(&self, disk: usize, f: impl FnOnce(&mut DiskSim) -> T) -> Result<T> {
        Ok(f(&mut self.disk(disk)?.lock()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_disksim::profiles;

    fn volume(n: usize) -> LogicalVolume {
        LogicalVolume::new(profiles::small(), n)
    }

    #[test]
    fn interface_calls_match_disksim() {
        let v = volume(1);
        let g = v.geometry().clone();
        assert_eq!(
            v.get_adjacent(0, 1).unwrap(),
            adjacent_lbn(&g, 0, 1).unwrap()
        );
        assert_eq!(
            v.get_track_boundaries(17).unwrap(),
            g.track_boundaries(17).unwrap()
        );
        assert_eq!(v.adjacency_limit(), g.adjacency_limit);
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_disks_panics() {
        let _ = volume(0);
    }

    #[test]
    fn disks_have_independent_state() {
        let v = volume(2);
        v.service(0, Request::single(100)).unwrap();
        assert_eq!(v.stats(0).unwrap().requests, 1);
        assert_eq!(v.stats(1).unwrap().requests, 0);
        let merged = v.merged_stats();
        assert_eq!(merged.requests, 1);
    }

    #[test]
    fn bad_disk_index_is_a_typed_error() {
        let v = volume(2);
        let err = v.service(2, Request::single(0)).unwrap_err();
        assert_eq!(err, LvmError::NoSuchDisk { disk: 2, ndisks: 2 });
        assert!(v.stats(9).is_err());
        assert!(v.with_disk(9, |_| ()).is_err());
        assert!(v
            .service_batch(5, &[Request::single(0)], SchedulePolicy::InOrder)
            .is_err());
    }

    #[test]
    fn disk_errors_are_wrapped() {
        let v = volume(1);
        let total = v.geometry().total_blocks();
        let err = v.service(0, Request::single(total + 10)).unwrap_err();
        assert!(matches!(err, LvmError::Disk(_)), "{err:?}");
    }

    #[test]
    fn sorted_lbns_are_coalesced() {
        let v = volume(1);
        let t = v
            .service_sorted_lbns(0, &[10, 11, 12, 13, 14], SchedulePolicy::InOrder)
            .unwrap();
        assert_eq!(t.requests, 1);
        assert_eq!(t.blocks, 5);
    }

    #[test]
    fn striped_makespan_is_max_of_disks() {
        let v = volume(2);
        let heavy: Vec<Request> = (0..40u64).map(|i| Request::single(i * 1000)).collect();
        let light = vec![Request::single(0)];
        let t = v
            .service_striped(&[
                (0, heavy, SchedulePolicy::AscendingLbn),
                (1, light, SchedulePolicy::AscendingLbn),
            ])
            .unwrap();
        assert!(t.per_disk[0].total_ms > t.per_disk[1].total_ms);
        assert_eq!(t.makespan_ms, t.per_disk[0].total_ms);
        assert_eq!(t.blocks(), 41);
        assert!(
            (t.total_busy_ms() - (t.per_disk[0].total_ms + t.per_disk[1].total_ms)).abs() < 1e-9
        );
    }

    #[test]
    fn reset_clears_state() {
        let v = volume(1);
        v.service(0, Request::single(5)).unwrap();
        v.reset();
        assert_eq!(v.stats(0).unwrap().requests, 0);
    }

    #[test]
    fn policies_agree_on_blocks_fetched() {
        let reqs: Vec<Request> = (0..20u64).map(|i| Request::single(i * 37)).collect();
        for policy in [
            SchedulePolicy::InOrder,
            SchedulePolicy::AscendingLbn,
            SchedulePolicy::Sptf,
        ] {
            let v = volume(1);
            let t = v.service_batch(0, &reqs, policy).unwrap();
            assert_eq!(t.blocks, 20, "{policy:?}");
        }
    }
}
