//! The logical volume: a set of identical simulated disks behind the
//! adjacency-model interface.

use multimap_disksim::{
    adjacent_lbn, coalesce_sorted, service_batch_serving, AccessStats, BatchTiming, DeviceModel,
    DiskError, DiskGeometry, DiskSim, FaultCounts, FaultPlan, Lbn, Request, RequestTiming,
    ServiceEvent, ServiceLog,
};
use parking_lot::Mutex;

use crate::error::{LvmError, Result};
use crate::recovery::{recovering_serve, RecoveryConfig, RecoveryStats, RemapTable};

/// How a batch of requests is ordered before being serviced.
///
/// This is the device layer's [`multimap_disksim::Discipline`] re-exported
/// under its historical volume-level name: volume callers and
/// backend-generic device callers speak the same enum.
pub use multimap_disksim::Discipline as SchedulePolicy;

/// Timing of a striped, multi-disk batch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VolumeBatchTiming {
    /// Per-disk batch timings (index = disk id).
    pub per_disk: Vec<BatchTiming>,
    /// Completion time of the slowest disk — what a caller waiting on all
    /// parallel I/O would observe.
    pub makespan_ms: f64,
}

impl VolumeBatchTiming {
    /// Total blocks transferred across all disks.
    pub fn blocks(&self) -> u64 {
        self.per_disk.iter().map(|b| b.blocks).sum()
    }

    /// Sum of busy time across all disks.
    pub fn total_busy_ms(&self) -> f64 {
        // staticcheck: allow(det-float-sum) — `per_disk` has one slot per member disk in fixed disk-index order; the sum order never varies.
        self.per_disk.iter().map(|b| b.total_ms).sum()
    }
}

/// A logical volume over one or more identical simulated disks.
///
/// All disks share a single [`DiskGeometry`]; addressing is explicit
/// (`disk` index + per-disk LBN), matching how the paper assigns each
/// dataset chunk to one disk and reports single-disk response times.
pub struct LogicalVolume {
    geometry: DiskGeometry,
    disks: Vec<Mutex<DiskSim>>,
    recovery: Option<RecoveryShared>,
}

/// Recovery state shared by all service paths when the volume was built
/// with [`LogicalVolume::with_recovery`].
struct RecoveryShared {
    cfg: RecoveryConfig,
    per_disk: Vec<Mutex<DiskRecovery>>,
}

#[derive(Default)]
struct DiskRecovery {
    remap: RemapTable,
    stats: RecoveryStats,
}

impl LogicalVolume {
    /// Create a volume of `ndisks` identical disks.
    ///
    /// # Panics
    /// Panics if `ndisks` is zero; [`LogicalVolume::try_new`] is the
    /// non-panicking variant.
    pub fn new(geometry: DiskGeometry, ndisks: usize) -> Self {
        // staticcheck: allow(no-unwrap) — documented panic on a construction
        // precondition; every fallible caller has try_new.
        Self::try_new(geometry, ndisks).expect("a volume needs at least one disk")
    }

    /// Create a volume of `ndisks` identical disks, or
    /// [`LvmError::EmptyVolume`] when `ndisks` is zero.
    pub fn try_new(geometry: DiskGeometry, ndisks: usize) -> Result<Self> {
        if ndisks == 0 {
            return Err(LvmError::EmptyVolume);
        }
        let disks = (0..ndisks)
            .map(|_| Mutex::new(DiskSim::new(geometry.clone())))
            .collect();
        Ok(LogicalVolume {
            geometry,
            disks,
            recovery: None,
        })
    }

    /// Create a volume whose disks all run the given fault plan, with
    /// the recovery path (bounded retry + bad-block remapping) active on
    /// every service entry point.
    ///
    /// An empty plan installs no injector, but the recovery path still
    /// runs — and produces bit-identical timing to a plain volume, which
    /// the determinism tests pin.
    pub fn with_recovery(
        geometry: DiskGeometry,
        ndisks: usize,
        plan: FaultPlan,
        cfg: RecoveryConfig,
    ) -> Result<Self> {
        let mut vol = Self::try_new(geometry, ndisks)?;
        for disk in &vol.disks {
            disk.lock().set_fault_plan(plan.clone());
        }
        vol.recovery = Some(RecoveryShared {
            cfg,
            per_disk: (0..ndisks).map(|_| Mutex::new(DiskRecovery::default())).collect(),
        });
        Ok(vol)
    }

    /// Number of disks in the volume.
    #[inline]
    pub fn num_disks(&self) -> usize {
        self.disks.len()
    }

    /// The shared disk geometry.
    #[inline]
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geometry
    }

    /// The `GET_ADJACENT` interface call: LBN of the `step`-th adjacent
    /// block of `lbn` (Section 3.2 of the paper).
    #[inline]
    pub fn get_adjacent(&self, lbn: Lbn, step: u32) -> multimap_disksim::Result<Lbn> {
        adjacent_lbn(&self.geometry, lbn, step)
    }

    /// The `GET_TRACK_BOUNDARIES` interface call: first and last LBN of
    /// the track containing `lbn`.
    #[inline]
    pub fn get_track_boundaries(&self, lbn: Lbn) -> multimap_disksim::Result<(Lbn, Lbn)> {
        self.geometry.track_boundaries(lbn)
    }

    /// The simulator behind `disk`, or [`LvmError::NoSuchDisk`].
    fn disk(&self, disk: usize) -> Result<&Mutex<DiskSim>> {
        self.disks.get(disk).ok_or(LvmError::NoSuchDisk {
            disk,
            ndisks: self.disks.len(),
        })
    }

    /// The number of adjacent blocks `D` each LBN has.
    #[inline]
    pub fn adjacency_limit(&self) -> u32 {
        self.geometry.adjacency_limit
    }

    /// The recovery state behind `disk`, when recovery is active.
    fn disk_recovery(&self, disk: usize) -> Result<Option<(&RecoveryConfig, &Mutex<DiskRecovery>)>> {
        match &self.recovery {
            None => Ok(None),
            Some(r) => {
                let rec = r.per_disk.get(disk).ok_or(LvmError::NoSuchDisk {
                    disk,
                    ndisks: self.disks.len(),
                })?;
                Ok(Some((&r.cfg, rec)))
            }
        }
    }

    /// Service one request on one disk.
    ///
    /// With recovery active ([`LogicalVolume::with_recovery`]) the
    /// request is retried/remapped as needed and the returned timing
    /// folds the recovery time into `overhead_ms`, so the total still
    /// reflects the wall-clock the disk was busy.
    pub fn service(&self, disk: usize, req: Request) -> Result<RequestTiming> {
        let Some((cfg, rec)) = self.disk_recovery(disk)? else {
            // This IS the volume's service primitive; the observed batch paths
            // delegate to the sim through the same lock.
            // staticcheck: allow(no-direct-service) — the volume service primitive itself; conformance audits the observed paths.
            return Ok(self.disk(disk)?.lock().service(req)?);
        };
        let mut sim = self.disk(disk)?.lock();
        let mut rec = rec.lock();
        let DiskRecovery { remap, stats } = &mut *rec;
        let (mut t, outcome) = recovering_serve(&self.geometry, cfg, remap, stats, &mut sim, req)?;
        if !outcome.is_clean() {
            t.overhead_ms += outcome.recovery_ms;
        }
        Ok(t)
    }

    /// Service a batch on one disk under the given policy.
    pub fn service_batch(
        &self,
        disk: usize,
        requests: &[Request],
        policy: SchedulePolicy,
    ) -> Result<BatchTiming> {
        self.service_batch_observed(disk, requests, policy, &mut |_| {})
    }

    /// [`LogicalVolume::service_batch`] with a per-request observer: the
    /// scheduler emits one [`ServiceEvent`] per serviced request, so a
    /// conformance oracle can inspect every decision (admission rank,
    /// queue length, head state before/after, timing components).
    pub fn service_batch_observed(
        &self,
        disk: usize,
        requests: &[Request],
        policy: SchedulePolicy,
        observe: &mut dyn FnMut(ServiceEvent),
    ) -> Result<BatchTiming> {
        let Some((cfg, rec)) = self.disk_recovery(disk)? else {
            let mut sim = self.disk(disk)?.lock();
            // Genuine trait dispatch: the rotating backend behind
            // DeviceModel is bit-identical to the pre-trait free
            // functions (pinned by tests/backend_dispatch.rs).
            let timing = DeviceModel::service_batch_observed(&mut *sim, requests, policy, observe)?;
            return Ok(timing);
        };
        let mut sim = self.disk(disk)?.lock();
        let mut rec = rec.lock();
        let DiskRecovery { remap, stats } = &mut *rec;
        // Recovery failures carry more context than a DiskError; the serve
        // closure stashes them and returns the causal DiskError as a
        // sentinel for the scheduler to abort on.
        let mut failure: Option<LvmError> = None;
        let geometry = &self.geometry;
        let mut serve = |sim: &mut DiskSim, req: Request| match recovering_serve(
            geometry, cfg, remap, stats, sim, req,
        ) {
            Ok(pair) => Ok(pair),
            Err(LvmError::Disk(e)) => Err(e),
            Err(other) => {
                let sentinel = match &other {
                    LvmError::SpareExhausted { lbn } => DiskError::MediaError { lbn: *lbn },
                    _ => DiskError::TransientTimeout { lbn: req.lbn },
                };
                failure = Some(other);
                Err(sentinel)
            }
        };
        let result = service_batch_serving(&mut sim, requests, policy, &mut serve, observe);
        match result {
            Ok(timing) => Ok(timing),
            Err(e) => Err(failure.unwrap_or(LvmError::Disk(e))),
        }
    }

    /// [`LogicalVolume::service_batch`] that collects every scheduler
    /// decision into a returned [`ServiceLog`].
    pub fn service_batch_logged(
        &self,
        disk: usize,
        requests: &[Request],
        policy: SchedulePolicy,
    ) -> Result<(BatchTiming, ServiceLog)> {
        let mut log = ServiceLog::new();
        let timing = self.service_batch_observed(disk, requests, policy, &mut log.recorder())?;
        Ok((timing, log))
    }

    /// Service a sorted, deduplicated LBN list on one disk, coalescing
    /// contiguous runs into multi-block requests first.
    pub fn service_sorted_lbns(
        &self,
        disk: usize,
        lbns: &[Lbn],
        policy: SchedulePolicy,
    ) -> Result<BatchTiming> {
        let requests = coalesce_sorted(lbns);
        self.service_batch(disk, &requests, policy)
    }

    /// Service one batch per disk "in parallel": each disk runs its batch
    /// independently and the makespan is the slowest disk's busy time.
    pub fn service_striped(
        &self,
        batches: &[(usize, Vec<Request>, SchedulePolicy)],
    ) -> Result<VolumeBatchTiming> {
        let mut per_disk = vec![BatchTiming::default(); self.disks.len()];
        for (disk, requests, policy) in batches {
            let t = self.service_batch(*disk, requests, *policy)?;
            per_disk[*disk].requests += t.requests;
            per_disk[*disk].blocks += t.blocks;
            per_disk[*disk].total_ms += t.total_ms;
            per_disk[*disk].payload = per_disk[*disk].payload.wrapping_add(t.payload);
        }
        let makespan_ms = per_disk.iter().map(|b| b.total_ms).fold(0.0, f64::max);
        Ok(VolumeBatchTiming {
            per_disk,
            makespan_ms,
        })
    }

    /// Accumulated statistics of one disk.
    pub fn stats(&self, disk: usize) -> Result<AccessStats> {
        Ok(*self.disk(disk)?.lock().stats())
    }

    /// Statistics merged across all disks.
    pub fn merged_stats(&self) -> AccessStats {
        let mut out = AccessStats::default();
        for d in &self.disks {
            out.merge(d.lock().stats());
        }
        out
    }

    /// Whether this volume was built with the recovery path active.
    pub fn has_recovery(&self) -> bool {
        self.recovery.is_some()
    }

    /// Number of logical blocks remapped to spares on `disk` so far.
    pub fn remap_count(&self, disk: usize) -> Result<usize> {
        match self.disk_recovery(disk)? {
            None => {
                self.disk(disk)?; // surface NoSuchDisk consistently
                Ok(0)
            }
            Some((_, rec)) => Ok(rec.lock().remap.len()),
        }
    }

    /// Whether any block of `[lbn, lbn + nblocks)` on `disk` has been
    /// remapped — i.e. lost its adjacency guarantee, so a query should
    /// fall back from semi-sequential hops to scheduled seeks for it.
    pub fn is_degraded_range(&self, disk: usize, lbn: Lbn, nblocks: u64) -> Result<bool> {
        match self.disk_recovery(disk)? {
            None => {
                self.disk(disk)?;
                Ok(false)
            }
            Some((_, rec)) => Ok(rec.lock().remap.overlaps(lbn, nblocks)),
        }
    }

    /// Recovery actions taken so far, merged across all disks (all zero
    /// when recovery is inactive).
    pub fn recovery_stats(&self) -> RecoveryStats {
        let mut out = RecoveryStats::default();
        if let Some(r) = &self.recovery {
            for rec in &r.per_disk {
                out.merge(&rec.lock().stats);
            }
        }
        out
    }

    /// Faults the disks injected so far, merged across all disks (all
    /// zero without a fault plan).
    pub fn injected_counts(&self) -> FaultCounts {
        let mut out = FaultCounts::default();
        for d in &self.disks {
            out.merge(&d.lock().fault_counts());
        }
        out
    }

    /// Reset every disk (time, head position, statistics and fault
    /// schedule), and clear all remap tables and recovery statistics —
    /// a full return to the freshly-constructed state.
    pub fn reset(&self) {
        for d in &self.disks {
            d.lock().reset();
        }
        if let Some(r) = &self.recovery {
            for rec in &r.per_disk {
                *rec.lock() = DiskRecovery::default();
            }
        }
    }

    /// Clear statistics on every disk without moving heads.
    pub fn reset_stats(&self) {
        for d in &self.disks {
            d.lock().reset_stats();
        }
    }

    /// Let every disk idle for `ms` (randomises rotational phase between
    /// queries, breaking artificial phase locking between runs).
    pub fn idle_all(&self, ms: f64) {
        for d in &self.disks {
            d.lock().idle(ms);
        }
    }

    /// Run a closure with mutable access to one disk's simulator (for
    /// callers that need custom scheduling).
    pub fn with_disk<T>(&self, disk: usize, f: impl FnOnce(&mut DiskSim) -> T) -> Result<T> {
        Ok(f(&mut self.disk(disk)?.lock()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_disksim::profiles;
    use multimap_disksim::FaultPlan;

    fn volume(n: usize) -> LogicalVolume {
        LogicalVolume::new(profiles::small(), n)
    }

    #[test]
    fn interface_calls_match_disksim() {
        let v = volume(1);
        let g = v.geometry().clone();
        assert_eq!(
            v.get_adjacent(0, 1).unwrap(),
            adjacent_lbn(&g, 0, 1).unwrap()
        );
        assert_eq!(
            v.get_track_boundaries(17).unwrap(),
            g.track_boundaries(17).unwrap()
        );
        assert_eq!(v.adjacency_limit(), g.adjacency_limit);
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_disks_panics() {
        let _ = volume(0);
    }

    #[test]
    fn disks_have_independent_state() {
        let v = volume(2);
        v.service(0, Request::single(100)).unwrap();
        assert_eq!(v.stats(0).unwrap().requests, 1);
        assert_eq!(v.stats(1).unwrap().requests, 0);
        let merged = v.merged_stats();
        assert_eq!(merged.requests, 1);
    }

    #[test]
    fn bad_disk_index_is_a_typed_error() {
        let v = volume(2);
        let err = v.service(2, Request::single(0)).unwrap_err();
        assert_eq!(err, LvmError::NoSuchDisk { disk: 2, ndisks: 2 });
        assert!(v.stats(9).is_err());
        assert!(v.with_disk(9, |_| ()).is_err());
        assert!(v
            .service_batch(5, &[Request::single(0)], SchedulePolicy::InOrder)
            .is_err());
    }

    #[test]
    fn disk_errors_are_wrapped() {
        let v = volume(1);
        let total = v.geometry().total_blocks();
        let err = v.service(0, Request::single(total + 10)).unwrap_err();
        assert!(matches!(err, LvmError::Disk(_)), "{err:?}");
    }

    #[test]
    fn sorted_lbns_are_coalesced() {
        let v = volume(1);
        let t = v
            .service_sorted_lbns(0, &[10, 11, 12, 13, 14], SchedulePolicy::InOrder)
            .unwrap();
        assert_eq!(t.requests, 1);
        assert_eq!(t.blocks, 5);
    }

    #[test]
    fn striped_makespan_is_max_of_disks() {
        let v = volume(2);
        let heavy: Vec<Request> = (0..40u64).map(|i| Request::single(i * 1000)).collect();
        let light = vec![Request::single(0)];
        let t = v
            .service_striped(&[
                (0, heavy, SchedulePolicy::AscendingLbn),
                (1, light, SchedulePolicy::AscendingLbn),
            ])
            .unwrap();
        assert!(t.per_disk[0].total_ms > t.per_disk[1].total_ms);
        assert_eq!(t.makespan_ms, t.per_disk[0].total_ms);
        assert_eq!(t.blocks(), 41);
        assert!(
            (t.total_busy_ms() - (t.per_disk[0].total_ms + t.per_disk[1].total_ms)).abs() < 1e-9
        );
    }

    #[test]
    fn reset_clears_state() {
        let v = volume(1);
        v.service(0, Request::single(5)).unwrap();
        v.reset();
        assert_eq!(v.stats(0).unwrap().requests, 0);
    }

    #[test]
    fn try_new_zero_disks_is_typed_error() {
        match LogicalVolume::try_new(profiles::small(), 0) {
            Err(e) => assert_eq!(e, LvmError::EmptyVolume),
            Ok(_) => panic!("zero-disk volume must be rejected"),
        }
    }

    /// The determinism pin for the recovery path: a volume built with an
    /// *empty* fault plan must produce bit-identical timing to a plain
    /// volume, on every scheduling policy — the recovering code path may
    /// not cost a single float operation when nothing faults.
    #[test]
    fn empty_fault_plan_bit_identical_to_plain_volume() {
        let reqs: Vec<Request> = (0..40u64)
            .map(|i| Request::new((i * 9173) % 150_000, 1 + i % 4))
            .collect();
        for policy in [
            SchedulePolicy::InOrder,
            SchedulePolicy::AscendingLbn,
            SchedulePolicy::Sptf,
            SchedulePolicy::QueuedSptf(8),
        ] {
            let plain = volume(1);
            let recovering = LogicalVolume::with_recovery(
                profiles::small(),
                1,
                FaultPlan::none(),
                crate::recovery::RecoveryConfig::default(),
            )
            .unwrap();
            let (tp, log_p) = plain.service_batch_logged(0, &reqs, policy).unwrap();
            let (tr, log_r) = recovering.service_batch_logged(0, &reqs, policy).unwrap();
            assert_eq!(
                tp.total_ms.to_bits(),
                tr.total_ms.to_bits(),
                "{policy:?} timing must be bit-identical"
            );
            assert_eq!(tp, tr, "{policy:?}");
            assert_eq!(log_p.events(), log_r.events(), "{policy:?}");
        }
    }

    #[test]
    fn faulted_batch_payload_matches_fault_free_run() {
        let reqs: Vec<Request> = (0..30u64)
            .map(|i| Request::new(i * 400, 3))
            .collect();
        let plan = FaultPlan::new(77)
            .with_transients(0.25, 5.0)
            .with_media_errors([401u64, 4_802, 8_000]);
        let clean = volume(1);
        let faulted = LogicalVolume::with_recovery(
            profiles::small(),
            1,
            plan.clone(),
            crate::recovery::RecoveryConfig::default(),
        )
        .unwrap();
        let tc = clean
            .service_batch(0, &reqs, SchedulePolicy::Sptf)
            .unwrap();
        let tf = faulted
            .service_batch(0, &reqs, SchedulePolicy::Sptf)
            .unwrap();
        assert_eq!(tc.payload, tf.payload, "same data must be delivered");
        assert_eq!(tc.blocks, tf.blocks);
        assert!(tf.total_ms > tc.total_ms, "faults must cost time");
        // Counter reconciliation: every injected transient was retried
        // exactly once, and the schedule replays from the plan.
        let stats = faulted.recovery_stats();
        let injected = faulted.injected_counts();
        assert_eq!(stats.transients, injected.transients);
        assert_eq!(stats.retries, injected.transients);
        assert_eq!(stats.media_errors, injected.media_errors);
        assert_eq!(stats.remaps, stats.media_errors);
        assert_eq!(injected.transients, plan.count_transients(injected.commands));
        assert!(stats.remaps >= 3, "all three bad blocks were touched");
        // The remapped cells are now degraded.
        assert!(faulted.is_degraded_range(0, 401, 1).unwrap());
        assert!(!faulted.is_degraded_range(0, 0, 1).unwrap());
        assert_eq!(faulted.remap_count(0).unwrap(), 3);
    }

    #[test]
    fn unrecoverable_transient_surfaces_typed_error() {
        let plan = FaultPlan::new(3)
            .with_transients(1.0, 5.0)
            .with_max_consecutive_transients(5);
        let v = LogicalVolume::with_recovery(
            profiles::small(),
            1,
            plan,
            crate::recovery::RecoveryConfig {
                max_retries: 2,
                ..crate::recovery::RecoveryConfig::default()
            },
        )
        .unwrap();
        let err = v
            .service_batch(0, &[Request::single(0)], SchedulePolicy::InOrder)
            .unwrap_err();
        assert!(matches!(err, LvmError::RetriesExhausted { .. }), "{err:?}");
    }

    #[test]
    fn reset_restores_pristine_recovery_state() {
        let plan = FaultPlan::new(1).with_media_error(500);
        let v = LogicalVolume::with_recovery(
            profiles::small(),
            1,
            plan,
            crate::recovery::RecoveryConfig::default(),
        )
        .unwrap();
        let reqs = [Request::new(498, 5)];
        let t1 = v
            .service_batch(0, &reqs, SchedulePolicy::InOrder)
            .unwrap();
        assert_eq!(v.remap_count(0).unwrap(), 1);
        v.reset();
        assert_eq!(v.remap_count(0).unwrap(), 0);
        assert_eq!(v.recovery_stats(), crate::recovery::RecoveryStats::default());
        let t2 = v
            .service_batch(0, &reqs, SchedulePolicy::InOrder)
            .unwrap();
        assert_eq!(t1.total_ms.to_bits(), t2.total_ms.to_bits());
    }

    #[test]
    fn policies_agree_on_blocks_fetched() {
        let reqs: Vec<Request> = (0..20u64).map(|i| Request::single(i * 37)).collect();
        for policy in [
            SchedulePolicy::InOrder,
            SchedulePolicy::AscendingLbn,
            SchedulePolicy::Sptf,
        ] {
            let v = volume(1);
            let t = v.service_batch(0, &reqs, policy).unwrap();
            assert_eq!(t.blocks, 20, "{policy:?}");
        }
    }
}
