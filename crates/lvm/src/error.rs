//! Typed errors for logical-volume operations.
//!
//! Service-path methods validate the disk index before touching any
//! simulator state, so a bad index surfaces as [`LvmError::NoSuchDisk`]
//! instead of an out-of-bounds panic; failures inside the disk simulator
//! are wrapped as [`LvmError::Disk`].

use std::fmt;

use multimap_disksim::DiskError;

/// Errors raised by [`LogicalVolume`](crate::LogicalVolume) operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LvmError {
    /// The requested disk index does not exist in this volume.
    NoSuchDisk {
        /// The offending disk index.
        disk: usize,
        /// Number of disks in the volume.
        ndisks: usize,
    },
    /// The underlying disk simulator rejected the operation.
    Disk(DiskError),
}

impl fmt::Display for LvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LvmError::NoSuchDisk { disk, ndisks } => {
                write!(f, "no disk {disk} in a volume of {ndisks} disk(s)")
            }
            LvmError::Disk(e) => write!(f, "disk error: {e}"),
        }
    }
}

impl std::error::Error for LvmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LvmError::NoSuchDisk { .. } => None,
            LvmError::Disk(e) => Some(e),
        }
    }
}

impl From<DiskError> for LvmError {
    fn from(e: DiskError) -> Self {
        LvmError::Disk(e)
    }
}

/// Result alias for volume operations.
pub type Result<T> = std::result::Result<T, LvmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = LvmError::NoSuchDisk { disk: 3, ndisks: 2 };
        assert!(e.to_string().contains("no disk 3"));
        let wrapped: LvmError = DiskError::EmptyRequest.into();
        assert_eq!(wrapped, LvmError::Disk(DiskError::EmptyRequest));
        assert!(wrapped.to_string().contains("disk error"));
    }
}
