//! Typed errors for logical-volume operations.
//!
//! Service-path methods validate the disk index before touching any
//! simulator state, so a bad index surfaces as [`LvmError::NoSuchDisk`]
//! instead of an out-of-bounds panic; failures inside the disk simulator
//! are wrapped as [`LvmError::Disk`].

use std::fmt;

use multimap_disksim::DiskError;

/// Errors raised by [`LogicalVolume`](crate::LogicalVolume) operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LvmError {
    /// The requested disk index does not exist in this volume.
    NoSuchDisk {
        /// The offending disk index.
        disk: usize,
        /// Number of disks in the volume.
        ndisks: usize,
    },
    /// The underlying disk simulator rejected the operation.
    Disk(DiskError),
    /// A volume cannot be built over zero disks.
    EmptyVolume,
    /// A striped volume cannot use a zero-block stripe unit.
    ZeroStripeUnit,
    /// A transient fault persisted through the configured retry budget.
    RetriesExhausted {
        /// First LBN of the failing physical segment.
        lbn: u64,
        /// Retries that were attempted before giving up.
        attempts: u32,
    },
    /// A hard-failed block could not be remapped: its track's spare
    /// region is fully allocated.
    SpareExhausted {
        /// The logical block that could not be remapped.
        lbn: u64,
    },
}

impl fmt::Display for LvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LvmError::NoSuchDisk { disk, ndisks } => {
                write!(f, "no disk {disk} in a volume of {ndisks} disk(s)")
            }
            LvmError::Disk(e) => write!(f, "disk error: {e}"),
            LvmError::EmptyVolume => write!(f, "a volume needs at least one disk"),
            LvmError::ZeroStripeUnit => write!(f, "stripe unit must be at least one block"),
            LvmError::RetriesExhausted { lbn, attempts } => write!(
                f,
                "transient fault at LBN {lbn} persisted through {attempts} retries"
            ),
            LvmError::SpareExhausted { lbn } => write!(
                f,
                "no spare sectors left on the track of LBN {lbn} for remapping"
            ),
        }
    }
}

impl std::error::Error for LvmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LvmError::Disk(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DiskError> for LvmError {
    fn from(e: DiskError) -> Self {
        LvmError::Disk(e)
    }
}

/// Result alias for volume operations.
pub type Result<T> = std::result::Result<T, LvmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = LvmError::NoSuchDisk { disk: 3, ndisks: 2 };
        assert!(e.to_string().contains("no disk 3"));
        let wrapped: LvmError = DiskError::EmptyRequest.into();
        assert_eq!(wrapped, LvmError::Disk(DiskError::EmptyRequest));
        assert!(wrapped.to_string().contains("disk error"));
    }
}
