//! A flat volume address space over multiple disks.
//!
//! The paper's LVM "exports a single logical volume mapped across
//! multiple disks" (Section 5.1). [`StripedVolume`] provides that view:
//! volume LBNs are striped over the member disks in fixed-size stripe
//! units, and the adjacency-model calls are answered *within* the owning
//! disk (adjacent blocks are a single-disk concept — the whole point is
//! the mechanical relationship between nearby tracks).
//!
//! For MultiMap the stripe unit should be at least a basic cube's span
//! so cubes never straddle disks; [`StripedVolume::new`] takes the unit
//! in blocks and leaves that policy to the caller (Section 4.4 defers
//! declustering policy to "existing declustering strategies").

use multimap_disksim::{Lbn, Request};

use crate::volume::{LogicalVolume, SchedulePolicy, VolumeBatchTiming};

/// A volume-relative block address.
pub type VolumeLbn = u64;

/// Striped flat address space over a [`LogicalVolume`].
pub struct StripedVolume {
    volume: LogicalVolume,
    stripe_blocks: u64,
}

impl StripedVolume {
    /// Stripe `volume` in units of `stripe_blocks`.
    ///
    /// # Panics
    /// Panics if `stripe_blocks` is zero; [`StripedVolume::try_new`] is
    /// the non-panicking variant.
    pub fn new(volume: LogicalVolume, stripe_blocks: u64) -> Self {
        // staticcheck: allow(no-unwrap) — documented panic on a construction
        // precondition; every fallible caller has try_new.
        Self::try_new(volume, stripe_blocks).expect("stripe unit must be positive")
    }

    /// Stripe `volume` in units of `stripe_blocks`, or
    /// [`crate::LvmError::ZeroStripeUnit`] when the unit is zero.
    pub fn try_new(volume: LogicalVolume, stripe_blocks: u64) -> crate::Result<Self> {
        if stripe_blocks == 0 {
            return Err(crate::LvmError::ZeroStripeUnit);
        }
        Ok(StripedVolume {
            volume,
            stripe_blocks,
        })
    }

    /// The underlying multi-disk volume.
    pub fn inner(&self) -> &LogicalVolume {
        &self.volume
    }

    /// Stripe unit in blocks.
    pub fn stripe_blocks(&self) -> u64 {
        self.stripe_blocks
    }

    /// Total volume capacity in blocks.
    pub fn total_blocks(&self) -> u64 {
        self.volume.geometry().total_blocks() * self.volume.num_disks() as u64
    }

    /// Translate a volume LBN to `(disk, disk LBN)`.
    pub fn locate(&self, vlbn: VolumeLbn) -> (usize, Lbn) {
        let n = self.volume.num_disks() as u64;
        let stripe = vlbn / self.stripe_blocks;
        let offset = vlbn % self.stripe_blocks;
        let disk = (stripe % n) as usize;
        let local = (stripe / n) * self.stripe_blocks + offset;
        (disk, local)
    }

    /// Inverse of [`Self::locate`].
    pub fn volume_lbn(&self, disk: usize, local: Lbn) -> VolumeLbn {
        let n = self.volume.num_disks() as u64;
        let stripe_on_disk = local / self.stripe_blocks;
        let offset = local % self.stripe_blocks;
        (stripe_on_disk * n + disk as u64) * self.stripe_blocks + offset
    }

    /// The `GET_ADJACENT` call in volume coordinates: resolved on the
    /// owning disk, then translated back.
    pub fn get_adjacent(&self, vlbn: VolumeLbn, step: u32) -> multimap_disksim::Result<VolumeLbn> {
        let (disk, local) = self.locate(vlbn);
        let adj = self.volume.get_adjacent(local, step)?;
        Ok(self.volume_lbn(disk, adj))
    }

    /// The `GET_TRACK_BOUNDARIES` call in volume coordinates. The track
    /// is a single-disk object; bounds are translated individually (they
    /// stay within one stripe only if tracks fit a stripe unit).
    pub fn get_track_boundaries(
        &self,
        vlbn: VolumeLbn,
    ) -> multimap_disksim::Result<(VolumeLbn, VolumeLbn)> {
        let (disk, local) = self.locate(vlbn);
        let (first, last) = self.volume.get_track_boundaries(local)?;
        Ok((self.volume_lbn(disk, first), self.volume_lbn(disk, last)))
    }

    /// Service a batch of volume-relative single-cell requests: routed
    /// per disk and serviced in parallel (makespan semantics).
    pub fn service_batch(
        &self,
        vlbns: &[VolumeLbn],
        policy: SchedulePolicy,
    ) -> crate::Result<VolumeBatchTiming> {
        let ndisks = self.volume.num_disks();
        let mut per_disk: Vec<Vec<Request>> = vec![Vec::new(); ndisks];
        for &v in vlbns {
            let (disk, local) = self.locate(v);
            per_disk[disk].push(Request::single(local));
        }
        let batches: Vec<(usize, Vec<Request>, SchedulePolicy)> = per_disk
            .into_iter()
            .enumerate()
            .filter(|(_, reqs)| !reqs.is_empty())
            .map(|(d, reqs)| (d, reqs, policy))
            .collect();
        self.volume.service_striped(&batches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_disksim::profiles;

    fn sv(ndisks: usize, stripe: u64) -> StripedVolume {
        StripedVolume::new(LogicalVolume::new(profiles::small(), ndisks), stripe)
    }

    #[test]
    fn locate_roundtrip() {
        let v = sv(3, 128);
        for vlbn in [0u64, 1, 127, 128, 500_000, 999_999] {
            let (disk, local) = v.locate(vlbn);
            assert!(disk < 3);
            assert_eq!(v.volume_lbn(disk, local), vlbn);
        }
    }

    #[test]
    fn stripes_rotate_over_disks() {
        let v = sv(3, 100);
        assert_eq!(v.locate(0).0, 0);
        assert_eq!(v.locate(100).0, 1);
        assert_eq!(v.locate(200).0, 2);
        assert_eq!(v.locate(300).0, 0);
        // Second stripe on disk 0 lands right after its first.
        assert_eq!(v.locate(300), (0, 100));
    }

    #[test]
    fn capacity_sums_disks() {
        let v = sv(4, 64);
        assert_eq!(v.total_blocks(), 4 * v.inner().geometry().total_blocks());
    }

    #[test]
    fn adjacency_stays_on_the_owning_disk() {
        let v = sv(2, 1 << 20); // stripe large enough for track math
        let vlbn = 5u64;
        let adj = v.get_adjacent(vlbn, 1).unwrap();
        let (d0, _) = v.locate(vlbn);
        let (d1, local) = v.locate(adj);
        assert_eq!(d0, d1, "adjacent block must stay on the same disk");
        // And matches the single-disk adjacency.
        assert_eq!(local, v.inner().get_adjacent(5, 1).unwrap());
    }

    #[test]
    fn track_boundaries_translate() {
        let v = sv(2, 1 << 20);
        let (first, last) = v.get_track_boundaries(7).unwrap();
        let (f_local, l_local) = v.inner().get_track_boundaries(7).unwrap();
        assert_eq!(v.locate(first).1, f_local);
        assert_eq!(v.locate(last).1, l_local);
    }

    #[test]
    fn batch_routes_and_parallelises() {
        let v = sv(2, 64);
        // Alternate stripes -> both disks busy.
        let vlbns: Vec<u64> = (0..8).map(|i| i * 64).collect();
        let t = v
            .service_batch(&vlbns, SchedulePolicy::AscendingLbn)
            .unwrap();
        assert_eq!(t.blocks(), 8);
        assert!(t.per_disk[0].requests == 4 && t.per_disk[1].requests == 4);
        assert!(t.makespan_ms < t.total_busy_ms());
    }

    #[test]
    #[should_panic(expected = "stripe unit")]
    fn zero_stripe_panics() {
        let _ = sv(2, 0);
    }
}
