//! Declustering strategies: which disk stores which allocation unit.
//!
//! MultiMap declusters *basic cubes* across the disks of a volume the way
//! traditional volumes decluster stripe units (Section 4.4). The paper is
//! agnostic about the strategy, so we provide the two classics it cites:
//! round-robin striping and cyclic allocation with a configurable skip
//! (Prabhakar et al., ICDE'98), which generalises round-robin.
//!
//! The disk count is a [`NonZeroUsize`], so the mod-by-zero panic the
//! old `usize` signature allowed is unrepresentable.

use std::num::NonZeroUsize;

/// Maps an allocation unit (basic cube or chunk) index to a disk.
pub trait Declustering {
    /// Disk responsible for allocation unit `unit` out of `ndisks`.
    fn disk_for(&self, unit: u64, ndisks: NonZeroUsize) -> usize;
}

/// Classic round-robin striping: unit `i` goes to disk `i mod n`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundRobin;

impl Declustering for RoundRobin {
    #[inline]
    fn disk_for(&self, unit: u64, ndisks: NonZeroUsize) -> usize {
        (unit % ndisks.get() as u64) as usize
    }
}

/// Cyclic allocation: unit `i` goes to disk `(i * skip) mod n`. With a
/// skip coprime to `n` every disk is used equally while neighbouring
/// units in multi-dimensional row-major order land on different disks.
///
/// A skip of zero is the degenerate "no declustering" strategy: every
/// unit lands on disk 0. (Earlier versions silently clamped 0 to 1,
/// turning a caller's explicit choice into round-robin.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cyclic {
    /// Stride between consecutive units' disks.
    pub skip: u64,
}

impl Cyclic {
    /// Cyclic allocation with the given skip. Use a value coprime to
    /// the disk count for full balance; zero pins everything to disk 0.
    pub fn new(skip: u64) -> Self {
        Cyclic { skip }
    }
}

impl Declustering for Cyclic {
    #[inline]
    fn disk_for(&self, unit: u64, ndisks: NonZeroUsize) -> usize {
        ((unit.wrapping_mul(self.skip)) % ndisks.get() as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: usize) -> NonZeroUsize {
        NonZeroUsize::new(v).unwrap()
    }

    #[test]
    fn round_robin_cycles() {
        let d = RoundRobin;
        let assignment: Vec<usize> = (0..8).map(|u| d.disk_for(u, n(3))).collect();
        assert_eq!(assignment, vec![0, 1, 2, 0, 1, 2, 0, 1]);
    }

    #[test]
    fn cyclic_with_coprime_skip_is_balanced() {
        let d = Cyclic::new(3);
        let mut counts = [0usize; 4];
        for u in 0..400 {
            counts[d.disk_for(u, n(4))] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100), "{counts:?}");
    }

    #[test]
    fn cyclic_skip_zero_means_no_declustering() {
        let d = Cyclic::new(0);
        for u in [0u64, 1, 5, 999] {
            assert_eq!(d.disk_for(u, n(4)), 0);
        }
    }

    #[test]
    fn single_disk_always_zero() {
        assert_eq!(RoundRobin.disk_for(7, n(1)), 0);
        assert_eq!(Cyclic::new(5).disk_for(7, n(1)), 0);
    }
}
