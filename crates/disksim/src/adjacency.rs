//! The adjacency model (Schlosser et al., FAST'05).
//!
//! For a starting LBN `b`, the *i-th adjacent block* (1 ≤ i ≤ D) is the
//! block on the i-th following track that the head can read immediately
//! after settling there, with **zero rotational latency**: the block whose
//! start angle is the first one at or after
//!
//! ```text
//! angle(end of b) + rotation during (command overhead + settle)
//! ```
//!
//! Because the offset depends only on geometry constants, all D adjacent
//! blocks of a block sit at the same angular offset from it (Figure 1(b)
//! of the MultiMap paper), and chains of adjacent blocks form
//! *semi-sequential paths* whose per-step cost is the settle time.

use crate::error::{DiskError, Result};
use crate::geometry::{DiskGeometry, Lbn, Zone};

/// Angular distance (in revolutions) between the start of a block and the
/// start of its adjacent blocks, before rounding up to a sector boundary:
/// one sector of transfer plus command overhead plus settle time plus the
/// firmware's conservative settle margin.
pub fn adjacency_delta_rev(geom: &DiskGeometry, zone: &Zone) -> f64 {
    let rev = geom.revolution_ms();
    let delta_ms = geom.sector_time_ms(zone)
        + geom.command_overhead_ms
        + geom.settle_ms
        + geom.adjacency_slack_ms;
    delta_ms / rev
}

/// Angular offset between a block and its adjacent blocks, in sectors of
/// the given zone, rounded up to the next sector boundary.
pub fn adjacency_offset_sectors(geom: &DiskGeometry, zone: &Zone) -> u32 {
    let spt = zone.sectors_per_track as f64;
    let raw = adjacency_delta_rev(geom, zone) * spt;
    // Round up so that by the time the head has settled the target sector
    // has not yet passed under it.
    let mut sectors = raw.ceil() as u32;
    if (raw - raw.floor()).abs() < 1e-9 {
        // Exact sector boundary: still need the next boundary to be safe
        // against the head arriving exactly as the sector starts.
        sectors = raw.round() as u32;
    }
    sectors % zone.sectors_per_track
}

/// The `GET_ADJACENT` primitive: LBN of the `step`-th adjacent block of
/// `lbn` (`step` is 1-based, at most the disk's advertised `D`).
///
/// Returns an error if the target track falls outside the zone of `lbn`
/// (MultiMap never maps across zone boundaries) or `step` exceeds `D`.
pub fn adjacent_lbn(geom: &DiskGeometry, lbn: Lbn, step: u32) -> Result<Lbn> {
    if step == 0 || step > geom.adjacency_limit {
        return Err(DiskError::NoAdjacentBlock { lbn, step });
    }
    let loc = geom.locate(lbn)?;
    let zone = &geom.zones()[loc.zone];
    let target_track = loc.track + step as u64;
    let zone_track_end = zone.first_track + zone.tracks(geom.surfaces);
    if target_track >= zone_track_end {
        return Err(DiskError::NoAdjacentBlock { lbn, step });
    }
    let t_rel = target_track - zone.first_track;
    let cylinder = zone.first_cylinder + t_rel / geom.surfaces as u64;
    let surface = (t_rel % geom.surfaces as u64) as u32;

    // Absolute angular slot (in sectors) of the start of `lbn`:
    let src_off = geom.track_offset_sectors(zone, loc.cylinder, loc.surface);
    let src_slot = (src_off + loc.sector) % loc.spt;
    // Target slot = source slot + adjacency offset.
    let target_slot = (src_slot + adjacency_offset_sectors(geom, zone)) % loc.spt;
    // Convert the absolute slot back to a sector index on the target track.
    let dst_off = geom.track_offset_sectors(zone, cylinder, surface);
    let sector = (target_slot + loc.spt - dst_off) % loc.spt;

    geom.lbn_of(cylinder, surface, sector)
}

/// Enumerate the semi-sequential path starting at `lbn` that repeatedly
/// takes the `step`-th adjacent block, yielding at most `len` LBNs
/// (including the start). Stops early at a zone boundary.
pub fn semi_sequential_path(geom: &DiskGeometry, lbn: Lbn, step: u32, len: usize) -> Vec<Lbn> {
    let mut path = Vec::with_capacity(len.min(4096));
    if len == 0 {
        return path;
    }
    path.push(lbn);
    let mut cur = lbn;
    while path.len() < len {
        match adjacent_lbn(geom, cur, step) {
            Ok(next) => {
                path.push(next);
                cur = next;
            }
            Err(_) => break,
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{DiskBuilder, ZoneSpec};

    fn disk() -> DiskGeometry {
        DiskBuilder::new("adj-test")
            .rpm(10_000.0)
            .surfaces(4)
            .zones(vec![
                ZoneSpec {
                    cylinders: 100,
                    sectors_per_track: 120,
                },
                ZoneSpec {
                    cylinders: 100,
                    sectors_per_track: 100,
                },
            ])
            .settle_ms(1.2)
            .settle_cylinders(8)
            .head_switch_ms(0.9)
            .command_overhead_ms(0.03)
            .build()
            .unwrap()
    }

    #[test]
    fn adjacent_is_on_next_track() {
        let g = disk();
        for step in [1u32, 2, 5, 32] {
            let a = adjacent_lbn(&g, 0, step).unwrap();
            let la = g.locate(a).unwrap();
            assert_eq!(la.track, step as u64, "step {step}");
        }
    }

    #[test]
    fn step_zero_and_too_deep_rejected() {
        let g = disk();
        assert!(adjacent_lbn(&g, 0, 0).is_err());
        assert!(adjacent_lbn(&g, 0, g.adjacency_limit + 1).is_err());
    }

    #[test]
    fn zone_boundary_has_no_adjacent() {
        let g = disk();
        // Last track of zone 0.
        let zone0 = g.zones()[0];
        let last_track_first_lbn = zone0.blocks - zone0.sectors_per_track as u64;
        assert!(adjacent_lbn(&g, last_track_first_lbn, 1).is_err());
    }

    #[test]
    fn adjacent_blocks_share_angular_offset() {
        let g = disk();
        let zone = &g.zones()[0];
        let start = g.locate(17).unwrap();
        let start_slot = (g.track_offset_sectors(zone, start.cylinder, start.surface)
            + start.sector)
            % start.spt;
        let expect = (start_slot + adjacency_offset_sectors(&g, zone)) % start.spt;
        for step in 1..=g.adjacency_limit {
            let a = adjacent_lbn(&g, 17, step).unwrap();
            let la = g.locate(a).unwrap();
            let slot = (g.track_offset_sectors(zone, la.cylinder, la.surface) + la.sector) % la.spt;
            assert_eq!(slot, expect, "step {step}");
        }
    }

    #[test]
    fn semi_sequential_path_advances_by_step_tracks() {
        let g = disk();
        let path = semi_sequential_path(&g, 5, 3, 10);
        assert_eq!(path.len(), 10);
        for (i, lbn) in path.iter().enumerate() {
            let loc = g.locate(*lbn).unwrap();
            assert_eq!(loc.track, 3 * i as u64);
        }
    }

    #[test]
    fn semi_sequential_path_stops_at_zone_end() {
        let g = disk();
        let tracks_in_zone0 = g.zones()[0].tracks(4);
        let path = semi_sequential_path(&g, 0, g.adjacency_limit, usize::MAX >> 1);
        assert!(!path.is_empty());
        let last = g.locate(*path.last().unwrap()).unwrap();
        assert!(last.track < tracks_in_zone0);
        // The path must cover as many steps as fit in the zone.
        let expected_len = (tracks_in_zone0 - 1) / g.adjacency_limit as u64 + 1;
        assert_eq!(path.len() as u64, expected_len);
    }
}
