//! # multimap-disksim — rotating disk simulator with the adjacency model
//!
//! This crate is the hardware substrate for the MultiMap reproduction
//! (Shao et al., ICDE 2007). It models a zoned, rotating disk drive at
//! the mechanical level needed by the paper:
//!
//! * **Geometry** ([`DiskGeometry`]): zones with per-zone track length
//!   `T`, cylinders × surfaces, LBN↔physical mapping with track and
//!   cylinder skew.
//! * **Seek curve** (Figure 1(a) of the paper): a settle-time plateau for
//!   distances up to `C` cylinders, then a calibrated sqrt+linear tail.
//! * **Adjacency model** ([`adjacent_lbn`], Figure 1(b)): the `D` blocks
//!   (one per following track) reachable after a settle with zero
//!   rotational latency, and the semi-sequential paths they form.
//! * **Service engine** ([`DiskSim`]): per-request timing from first
//!   principles (overhead + seek + rotational latency + transfer) with a
//!   read-ahead fast path for exact sequential continuation.
//! * **Schedulers** ([`Discipline`], [`service_batch_serving`]): the
//!   disk's internal shortest-positioning-time-first policy (full and
//!   queue-depth-limited) and the storage manager's ascending-LBN
//!   policy, behind one dispatcher.
//! * **Device API** ([`DeviceModel`]): the backend-generic service
//!   interface. [`DiskSim`] is the first (bit-identical) implementation;
//!   [`SsdModel`] (multi-queue SSD, per-channel parallelism) and
//!   [`ImrModel`] (interlaced tracks, bottom-write read-modify-write)
//!   are alternative backends, constructible by name via
//!   [`build_backend`].
//! * **Profiles** ([`profiles`]): the paper's two evaluation drives
//!   (Seagate Cheetah 36ES, Maxtor Atlas 10k III) plus small test disks.
//!
//! ```
//! use multimap_disksim::{profiles, DiskSim, Request, adjacent_lbn};
//!
//! let geom = profiles::cheetah_36es();
//! let first_adjacent = adjacent_lbn(&geom, 0, 1).unwrap();
//! let mut sim = DiskSim::new(geom);
//! sim.service(Request::single(0)).unwrap();
//! let t = sim.service(Request::single(first_adjacent)).unwrap();
//! // An adjacent-block access costs roughly the settle time…
//! assert!(t.total_ms() < 2.0 * sim.geometry().settle_ms);
//! // …which is far below the average rotational latency alone.
//! assert!(t.total_ms() < sim.geometry().revolution_ms() / 2.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod adjacency;
pub mod device;
pub mod error;
pub mod fault;
pub mod geometry;
pub mod imr;
pub mod observe;
pub mod profiles;
pub mod scheduler;
mod selector;
pub mod sim;
pub mod ssd;
pub mod stats;
pub mod trace;

pub use adjacency::{adjacency_offset_sectors, adjacent_lbn, semi_sequential_path};
pub use device::{build_backend, DeviceModel, BACKEND_NAMES};
pub use error::{DiskError, Result};
pub use fault::{request_payload, FaultCounts, FaultDecision, FaultInjector, FaultOutcome, FaultPlan};
pub use geometry::{
    locate_call_count, DiskBuilder, DiskGeometry, Lbn, Location, Zone, ZoneSpec,
    ROTATION_WRAP_GUARD, SECTOR_BYTES,
};
pub use imr::{ImrConfig, ImrConfigBuilder, ImrModel};
pub use observe::{ServiceEvent, ServiceLog, Transition};
pub use scheduler::{
    coalesce_sorted, plain_serve, service_batch_queued_sptf_incremental,
    service_batch_queued_sptf_reference, service_batch_serving, service_batch_sptf_incremental,
    service_batch_sptf_reference, BatchTiming, Discipline, SchedStats, ServeFn,
    SPTF_INCREMENTAL_MIN_WINDOW,
};
pub use sim::{AccessKind, DiskSim, HeadState, Request, RequestProfile, RequestTiming, SeekMemo};
pub use ssd::{SsdConfig, SsdConfigBuilder, SsdModel};
pub use stats::AccessStats;
pub use trace::{service_traced, Trace, TraceRecord};

#[cfg(test)]
mod integration_tests {
    use super::*;

    /// The headline property of the adjacency model: semi-sequential
    /// access beats strided access within D tracks by about 4x (Sec. 3.2).
    #[test]
    fn semi_sequential_beats_nearby_strided_access() {
        let geom = profiles::small();
        let path = semi_sequential_path(&geom, 0, 1, 50);

        let mut semi = DiskSim::new(geom.clone());
        semi.service(Request::single(path[0])).unwrap();
        semi.reset_stats();
        for &lbn in &path[1..] {
            semi.service(Request::single(lbn)).unwrap();
        }
        let semi_per_block = semi.stats().per_block_ms();

        // Strided access: same tracks, but target the block straight below
        // the previous one (same sector index) — incurs rotational latency.
        let mut strided = DiskSim::new(geom.clone());
        strided.service(Request::single(0)).unwrap();
        strided.reset_stats();
        for i in 1..50u64 {
            let lbn = geom.lbn_of(i / 4, (i % 4) as u32, 0).unwrap();
            strided.service(Request::single(lbn)).unwrap();
        }
        let strided_per_block = strided.stats().per_block_ms();

        assert!(
            semi_per_block * 2.0 < strided_per_block,
            "semi-sequential {semi_per_block} ms should be well below strided {strided_per_block} ms"
        );
    }

    /// Sequential streaming is at least an order of magnitude faster per
    /// block than semi-sequential access, which in turn beats random.
    #[test]
    fn access_pattern_hierarchy() {
        let geom = profiles::small();

        let mut seq = DiskSim::new(geom.clone());
        seq.service(Request::single(0)).unwrap();
        seq.reset_stats();
        for lbn in 1..200u64 {
            seq.service(Request::single(lbn)).unwrap();
        }
        let seq_ms = seq.stats().per_block_ms();

        let path = semi_sequential_path(&geom, 0, 1, 200);
        let mut semi = DiskSim::new(geom.clone());
        semi.service(Request::single(path[0])).unwrap();
        semi.reset_stats();
        for &lbn in &path[1..] {
            semi.service(Request::single(lbn)).unwrap();
        }
        let semi_ms = semi.stats().per_block_ms();

        let mut random = DiskSim::new(geom.clone());
        random.service(Request::single(0)).unwrap();
        random.reset_stats();
        let total = geom.total_blocks();
        let mut x = 12345u64;
        for _ in 0..200 {
            // Simple LCG to scatter accesses deterministically.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            random.service(Request::single(x % total)).unwrap();
        }
        let rand_ms = random.stats().per_block_ms();

        assert!(
            seq_ms * 10.0 < semi_ms,
            "sequential {seq_ms} vs semi-sequential {semi_ms}"
        );
        assert!(
            semi_ms < rand_ms,
            "semi-sequential {semi_ms} vs random {rand_ms}"
        );
    }
}
