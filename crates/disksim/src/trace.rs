//! Request tracing: record every serviced request with its timing for
//! post-hoc analysis, debugging of schedules, and replay.

// staticcheck: allow-file(det-float-sum) — every reduction here sums the append-only `records` Vec in service (push) order; accumulation is single-threaded, so the f64 sums are order-pinned and replayable.

use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::geometry::Lbn;
use crate::sim::{DiskSim, Request, RequestTiming};

/// One traced request.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulated time the request started service (ms).
    pub start_ms: f64,
    /// First LBN.
    pub lbn: Lbn,
    /// Blocks transferred.
    pub nblocks: u64,
    /// Command overhead component (ms).
    pub overhead_ms: f64,
    /// Positioning component (ms).
    pub seek_ms: f64,
    /// Rotational component (ms).
    pub rotation_ms: f64,
    /// Transfer component (ms).
    pub transfer_ms: f64,
}

impl TraceRecord {
    /// Total service time.
    pub fn total_ms(&self) -> f64 {
        self.overhead_ms + self.seek_ms + self.rotation_ms + self.transfer_ms
    }
}

/// A recorded sequence of serviced requests.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Records in service order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Record one serviced request.
    pub fn push(&mut self, start_ms: f64, req: Request, t: &RequestTiming) {
        self.records.push(TraceRecord {
            start_ms,
            lbn: req.lbn,
            nblocks: req.nblocks,
            overhead_ms: t.overhead_ms,
            seek_ms: t.seek_ms,
            rotation_ms: t.rotation_ms,
            transfer_ms: t.transfer_ms,
        });
    }

    /// Total busy time of the trace.
    pub fn total_ms(&self) -> f64 {
        self.records.iter().map(|r| r.total_ms()).sum()
    }

    /// The dominant component of total time: `(overhead, seek, rotation,
    /// transfer)` fractions summing to 1 (all zeros when empty).
    pub fn component_fractions(&self) -> (f64, f64, f64, f64) {
        let total = self.total_ms();
        // staticcheck: allow(float-cmp) — sentinel: an empty trace sums to exactly 0.0; avoids 0/0.
        if total == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let oh: f64 = self.records.iter().map(|r| r.overhead_ms).sum();
        let sk: f64 = self.records.iter().map(|r| r.seek_ms).sum();
        let ro: f64 = self.records.iter().map(|r| r.rotation_ms).sum();
        let tr: f64 = self.records.iter().map(|r| r.transfer_ms).sum();
        (oh / total, sk / total, ro / total, tr / total)
    }

    /// Replay this trace's requests (in recorded order) against a fresh
    /// simulator, returning the new total time. Useful to compare the
    /// same request sequence across disk models.
    pub fn replay(&self, sim: &mut DiskSim) -> Result<f64> {
        let mut total = 0.0;
        for r in &self.records {
            total += sim.service(Request::new(r.lbn, r.nblocks))?.total_ms();
        }
        Ok(total)
    }
}

/// Service a batch in the given order while recording a trace.
pub fn service_traced(sim: &mut DiskSim, requests: &[Request]) -> Result<Trace> {
    let mut trace = Trace::new();
    for req in requests {
        let start = sim.state().time_ms;
        let t = sim.service(*req)?;
        trace.push(start, *req, &t);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn trace_records_components() {
        let mut sim = DiskSim::new(profiles::small());
        let reqs: Vec<Request> = (0..10u64).map(|i| Request::single(i * 1000)).collect();
        let trace = service_traced(&mut sim, &reqs).unwrap();
        assert_eq!(trace.len(), 10);
        assert!(!trace.is_empty());
        assert!(trace.total_ms() > 0.0);
        let (oh, sk, ro, tr) = trace.component_fractions();
        assert!((oh + sk + ro + tr - 1.0).abs() < 1e-9);
        // Starts are strictly increasing.
        for w in trace.records().windows(2) {
            assert!(w[0].start_ms < w[1].start_ms);
        }
    }

    #[test]
    fn replay_on_identical_disk_matches() {
        let geom = profiles::small();
        let mut sim = DiskSim::new(geom.clone());
        let reqs: Vec<Request> = (0..20u64).map(|i| Request::new(i * 777, 2)).collect();
        let trace = service_traced(&mut sim, &reqs).unwrap();
        let mut replay_sim = DiskSim::new(geom);
        let replayed = trace.replay(&mut replay_sim).unwrap();
        assert!((replayed - trace.total_ms()).abs() < 1e-9);
    }

    #[test]
    fn replay_on_different_disk_differs() {
        let mut sim = DiskSim::new(profiles::small());
        let reqs: Vec<Request> = (0..20u64).map(|i| Request::new(i * 777, 2)).collect();
        let trace = service_traced(&mut sim, &reqs).unwrap();
        let mut other = DiskSim::new(profiles::cheetah_36es());
        let replayed = trace.replay(&mut other).unwrap();
        assert!(replayed > 0.0);
        assert!((replayed - trace.total_ms()).abs() > 1e-6);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert_eq!(t.total_ms(), 0.0);
        assert_eq!(t.component_fractions(), (0.0, 0.0, 0.0, 0.0));
    }
}
