//! Canned disk profiles.
//!
//! The two "real" profiles approximate the drives used in the paper's
//! evaluation (Section 5.1): a Seagate Cheetah 36ES and a Maxtor Atlas
//! 10k III, both 36.7 GB 10k-RPM SCSI drives. Zone tables, settle times
//! and seek curves are reconstructed from public data sheets and the
//! characterisation numbers in Schlosser et al. (FAST'05); absolute
//! capacities are nominal. Both profiles advertise `D = 128` adjacent
//! blocks, the value the paper uses for all experiments.

use crate::geometry::{DiskBuilder, DiskGeometry, ZoneSpec};

/// Build the zone table: `n` zones of `cyls_per_zone` cylinders each, with
/// sectors-per-track falling linearly from `outer_spt` by `step` per zone.
fn linear_zones(n: u32, cyls_per_zone: u32, outer_spt: u32, step: u32) -> Vec<ZoneSpec> {
    (0..n)
        .map(|i| ZoneSpec {
            cylinders: cyls_per_zone,
            sectors_per_track: outer_spt - i * step,
        })
        .collect()
}

/// Seagate Cheetah 36ES (ST336938LW): 36.7 GB, 10k RPM, 4 surfaces.
pub fn cheetah_36es() -> DiskGeometry {
    DiskBuilder::new("Seagate Cheetah 36ES")
        .rpm(10_000.0)
        .surfaces(4)
        .zones(linear_zones(10, 2_630, 740, 30))
        .settle_ms(1.3)
        .settle_cylinders(32)
        .head_switch_ms(1.0)
        .command_overhead_ms(0.025)
        .avg_seek_ms(5.2)
        .max_seek_ms(10.5)
        .adjacency_limit(128)
        .build()
        // staticcheck: allow(no-unwrap) — compiled-in profile constants; unit tests build every profile.
        .expect("static profile must be valid")
}

/// Maxtor Atlas 10k III: 36.7 GB, 10k RPM, 4 surfaces.
pub fn atlas_10k_iii() -> DiskGeometry {
    DiskBuilder::new("Maxtor Atlas 10k III")
        .rpm(10_000.0)
        .surfaces(4)
        .zones(linear_zones(10, 3_100, 686, 30))
        .settle_ms(1.2)
        .settle_cylinders(32)
        .head_switch_ms(0.9)
        .command_overhead_ms(0.025)
        .avg_seek_ms(4.5)
        .max_seek_ms(9.5)
        .adjacency_limit(128)
        .build()
        // staticcheck: allow(no-unwrap) — compiled-in profile constants; unit tests build every profile.
        .expect("static profile must be valid")
}

/// Both evaluation disks, in the order the paper's figures report them.
pub fn evaluation_disks() -> Vec<DiskGeometry> {
    vec![atlas_10k_iii(), cheetah_36es()]
}

/// A deliberately tiny disk mirroring the paper's running example
/// (Section 4.1): track length `T = 5` in the outer zone and `D = 9`
/// adjacent blocks. Useful for unit tests and doc examples.
pub fn toy() -> DiskGeometry {
    DiskBuilder::new("toy (paper example, T=5, D=9)")
        .rpm(6_000.0)
        .surfaces(3)
        .zones(vec![
            ZoneSpec {
                cylinders: 40,
                sectors_per_track: 5,
            },
            ZoneSpec {
                cylinders: 40,
                sectors_per_track: 4,
            },
        ])
        .settle_ms(1.0)
        .settle_cylinders(3)
        .head_switch_ms(0.8)
        .command_overhead_ms(0.02)
        .avg_seek_ms(3.0)
        .max_seek_ms(6.0)
        .adjacency_limit(9)
        .build()
        // staticcheck: allow(no-unwrap) — compiled-in profile constants; unit tests build every profile.
        .expect("static profile must be valid")
}

/// A projected future drive `generations` track-density doublings past
/// the Cheetah 36ES (Section 3.1: track density grows while settle time
/// barely improves, so the settle plateau covers ever more tracks and
/// `D` grows). Generation 0 reproduces `cheetah_36es`.
pub fn density_trend(generations: u32) -> DiskGeometry {
    let factor = 1u32 << generations;
    DiskBuilder::new(format!("trend-gen{generations} (Cheetah-36ES-like)"))
        .rpm(10_000.0)
        .surfaces(4)
        .zones(linear_zones(10, 2_630 * factor, 740, 30))
        .settle_ms(1.3)
        // Same physical seek span covers `factor` times more cylinders.
        .settle_cylinders(32 * factor)
        .head_switch_ms(1.0)
        .command_overhead_ms(0.025)
        .avg_seek_ms(5.2)
        .max_seek_ms(10.5)
        .adjacency_limit(128 * factor)
        .build()
        // staticcheck: allow(no-unwrap) — compiled-in profile constants; unit tests build every profile.
        .expect("static profile must be valid")
}

/// A mid-size disk for fast integration tests: two zones, `D = 32`.
pub fn small() -> DiskGeometry {
    DiskBuilder::new("small-test-disk")
        .rpm(10_000.0)
        .surfaces(4)
        .zones(vec![
            ZoneSpec {
                cylinders: 600,
                sectors_per_track: 120,
            },
            ZoneSpec {
                cylinders: 600,
                sectors_per_track: 100,
            },
        ])
        .settle_ms(1.2)
        .settle_cylinders(8)
        .head_switch_ms(0.9)
        .command_overhead_ms(0.025)
        .avg_seek_ms(4.5)
        .max_seek_ms(9.0)
        .adjacency_limit(32)
        .build()
        // staticcheck: allow(no-unwrap) — compiled-in profile constants; unit tests build every profile.
        .expect("static profile must be valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_profiles_have_paper_parameters() {
        for disk in evaluation_disks() {
            assert_eq!(disk.adjacency_limit, 128, "{}", disk.name);
            assert_eq!(disk.surfaces, 4);
            assert!(disk.rpm >= 10_000.0);
            // 36.7 GB nominal: accept 28–40 GB formatted.
            let gb = disk.capacity_bytes() as f64 / 1e9;
            assert!((28.0..40.0).contains(&gb), "{}: {gb} GB", disk.name);
            // Track lengths well above the 259-cell chunk edge (Sec. 5.3).
            assert!(disk.zones().iter().all(|z| z.sectors_per_track >= 259));
        }
    }

    #[test]
    fn toy_matches_paper_example_parameters() {
        let t = toy();
        assert_eq!(t.zones()[0].sectors_per_track, 5);
        assert_eq!(t.adjacency_limit, 9);
        assert_eq!(t.surfaces, 3);
    }

    #[test]
    fn zone_tables_are_monotonically_slower_inward() {
        for disk in [cheetah_36es(), atlas_10k_iii(), toy(), small()] {
            let zones = disk.zones();
            for w in zones.windows(2) {
                assert!(w[0].sectors_per_track > w[1].sectors_per_track);
            }
        }
    }

    #[test]
    fn density_trend_grows_adjacency() {
        let g0 = density_trend(0);
        assert_eq!(g0.adjacency_limit, 128);
        assert_eq!(g0.total_cylinders(), cheetah_36es().total_cylinders());
        let g2 = density_trend(2);
        assert_eq!(g2.adjacency_limit, 512);
        assert_eq!(g2.total_cylinders(), 4 * g0.total_cylinders());
        // Settle plateau still covers the advertised D.
        assert!(g2.adjacency_limit <= g2.surfaces * g2.settle_cylinders);
    }

    #[test]
    fn streaming_bandwidth_is_tens_of_mb_per_sec() {
        let disk = cheetah_36es();
        let outer = &disk.zones()[0];
        let mb_per_s = disk.streaming_bandwidth(outer) * 1000.0 / 1e6;
        assert!((40.0..80.0).contains(&mb_per_s), "{mb_per_s} MB/s");
    }
}
