//! Scheduler observation: a per-request record of what the scheduler
//! decided and what the mechanics did, rich enough for an external
//! physics oracle to re-derive every timing component from geometry
//! alone.
//!
//! The batch-servicing functions in [`crate::scheduler`] have
//! `*_observed` variants that emit one [`ServiceEvent`] per serviced
//! request through a caller-supplied closure; [`ServiceLog`] is the
//! common collector.

use crate::fault::FaultOutcome;
use crate::geometry::DiskGeometry;
use crate::sim::{AccessKind, HeadState, Request, RequestTiming};
use crate::trace::Trace;

/// How the head reached a request, classified from the positioning time
/// the simulator actually charged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transition {
    /// No positioning at all — sequential continuation (including the
    /// read-ahead prefetch fast path).
    Sequential,
    /// Positioning fit inside the settle plateau (settle or pure head
    /// switch, plus jitter): an adjacency hop, the paper's
    /// semi-sequential step.
    AdjacencyHop,
    /// Positioning exceeded the plateau: a real arm seek.
    Seek,
}

/// One serviced request with full before/after mechanical state and the
/// scheduler's decision context.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceEvent {
    /// Position in service order (0-based).
    pub seq: usize,
    /// Position in the order the scheduler admitted requests: the
    /// issue order for in-order and queued policies, the sorted order
    /// for ascending service, the original slice index for full SPTF.
    pub admission_rank: usize,
    /// Number of candidate requests the scheduler chose between when it
    /// picked this one (1 for in-order service).
    pub queue_len: usize,
    /// Read or write.
    pub kind: AccessKind,
    /// The request serviced.
    pub request: Request,
    /// Mechanical state when service began.
    pub before: HeadState,
    /// Mechanical state when service completed.
    pub after: HeadState,
    /// Component breakdown of the service time (successful attempts
    /// only; fault-recovery time is in `fault.recovery_ms`).
    pub timing: RequestTiming,
    /// Faults hit while serving this request and what recovering from
    /// them cost; all-zero ([`FaultOutcome::is_clean`]) on the normal
    /// path.
    pub fault: FaultOutcome,
}

impl ServiceEvent {
    /// Total wall-clock the request occupied the disk: the successful
    /// attempts' timing plus any fault-recovery time. Always equals
    /// `after.time_ms - before.time_ms` (within float epsilon).
    #[inline]
    pub fn elapsed_ms(&self) -> f64 {
        if self.fault.is_clean() {
            self.timing.total_ms()
        } else {
            self.timing.total_ms() + self.fault.recovery_ms
        }
    }

    /// Whether this request continued the previous one's read-ahead
    /// stream (the simulator's prefetch fast path).
    #[inline]
    pub fn is_prefetch_hit(&self) -> bool {
        self.before.last_end_lbn == Some(self.request.lbn)
    }

    /// Classify how the head reached this request, from the positioning
    /// time charged against `geom`'s settle plateau.
    ///
    /// The timing folds seek, settle and head-switch into one
    /// positioning figure; a charge at or below
    /// `max(settle_ms, head_switch_ms) + settle_jitter_ms` (plus the
    /// write-settle surcharge for writes) can only have come from a
    /// within-plateau move — an adjacency hop. Multi-track requests
    /// accumulate several positionings into one charge; if the total
    /// still fits under the plateau every leg was a hop, otherwise the
    /// request paid at least one real seek and classifies as
    /// [`Transition::Seek`].
    pub fn transition(&self, geom: &DiskGeometry) -> Transition {
        if self.timing.seek_ms <= 0.0 {
            return Transition::Sequential;
        }
        let mut plateau = geom.settle_ms.max(geom.head_switch_ms) + geom.settle_jitter_ms;
        if self.kind == AccessKind::Write {
            plateau += geom.write_settle_extra_ms;
        }
        if self.timing.seek_ms <= plateau + 1e-9 {
            Transition::AdjacencyHop
        } else {
            Transition::Seek
        }
    }
}

/// An in-order collection of [`ServiceEvent`]s from one or more batches.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceLog {
    events: Vec<ServiceEvent>,
}

impl ServiceLog {
    /// Empty log.
    pub fn new() -> Self {
        ServiceLog::default()
    }

    /// Events in service order.
    pub fn events(&self) -> &[ServiceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Record one event.
    pub fn push(&mut self, event: ServiceEvent) {
        self.events.push(event);
    }

    /// A closure that records into this log, for the `*_observed`
    /// scheduler entry points.
    pub fn recorder(&mut self) -> impl FnMut(ServiceEvent) + '_ {
        |event| self.events.push(event)
    }

    /// Sum of all recorded service times (including fault-recovery
    /// time, which is zero for clean events).
    pub fn total_ms(&self) -> f64 {
        // staticcheck: allow(det-float-sum) — `events` is an append-only Vec summed in service (push) order; single-threaded, order pinned.
        self.events.iter().map(|e| e.elapsed_ms()).sum()
    }

    /// Project the log onto a plain [`Trace`] (timing components only).
    pub fn to_trace(&self) -> Trace {
        let mut trace = Trace::new();
        for e in &self.events {
            trace.push(e.before.time_ms, e.request, &e.timing);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;
    use crate::profiles;
    use crate::scheduler::Discipline;
    use crate::sim::DiskSim;

    #[test]
    fn log_collects_events_and_projects_trace() {
        let mut sim = DiskSim::new(profiles::small());
        let reqs: Vec<Request> = (0..8u64).map(|i| Request::single(i * 999)).collect();
        let mut log = ServiceLog::new();
        let timing = sim
            .service_batch_observed(&reqs, Discipline::InOrder, &mut log.recorder())
            .unwrap();
        assert_eq!(log.len(), 8);
        assert!(!log.is_empty());
        assert!((log.total_ms() - timing.total_ms).abs() < 1e-9);
        let trace = log.to_trace();
        assert_eq!(trace.len(), 8);
        assert!((trace.total_ms() - timing.total_ms).abs() < 1e-9);
        for (i, e) in log.events().iter().enumerate() {
            assert_eq!(e.seq, i);
            assert_eq!(e.admission_rank, i);
            assert_eq!(e.queue_len, 1);
            assert_eq!(e.kind, AccessKind::Read);
            assert!((e.after.time_ms - e.before.time_ms - e.timing.total_ms()).abs() < 1e-9);
        }
    }

    #[test]
    fn prefetch_hit_detection() {
        let mut sim = DiskSim::new(profiles::small());
        let reqs = [Request::new(0, 4), Request::new(4, 4), Request::new(100, 1)];
        let mut log = ServiceLog::new();
        sim.service_batch_observed(&reqs, Discipline::InOrder, &mut log.recorder())
            .unwrap();
        assert!(!log.events()[0].is_prefetch_hit());
        assert!(log.events()[1].is_prefetch_hit());
        assert!(!log.events()[2].is_prefetch_hit());
    }
}
