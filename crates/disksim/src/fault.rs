//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes everything that can go wrong on one disk:
//! latent media errors pinned to chosen LBNs, transient command timeouts
//! drawn with a per-command probability, and slow-read tail latency. All
//! randomness is a pure function of the plan's seed and a monotone
//! per-disk command counter, so a workload replayed against the same plan
//! sees byte-identical faults — and a test can recompute the injected
//! schedule independently with [`FaultPlan::count_transients`].
//!
//! The plan is installed on a [`DiskSim`](crate::DiskSim) via
//! [`DiskSim::set_fault_plan`](crate::DiskSim::set_fault_plan); faults
//! surface as the typed [`DiskError::MediaError`] and
//! [`DiskError::TransientTimeout`] variants. Recovery (retry, bad-block
//! remapping) is deliberately *not* the simulator's job: it belongs to
//! the storage manager above, `multimap-lvm`.

use std::collections::BTreeSet;

use crate::error::DiskError;
use crate::geometry::Lbn;
use crate::sim::Request;

/// Stream-separation constants for the per-command draws (arbitrary odd
/// 64-bit constants; distinct per stream so the transient and slow-read
/// schedules are independent).
const STREAM_TRANSIENT: u64 = 0x9E6C_63D1_0C50_33F5;
const STREAM_SLOW_READ: u64 = 0x2545_F491_4F6C_DD1D;

/// The splitmix64 finaliser: a cheap, well-mixed 64-bit hash.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A uniform draw in `[0, 1)` for command `n` of `stream`.
#[inline]
fn draw(seed: u64, stream: u64, n: u64) -> f64 {
    let x = mix64(seed ^ stream ^ n.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Order-independent integrity checksum of one request's *logical* block
/// addresses: the wrapping sum of a per-block hash. Because the sum
/// commutes, any scheduler reordering (including fault-induced splits
/// and retries) leaves the batch payload unchanged — so a faulted run
/// returning the same payload as a fault-free run returned exactly the
/// same data.
#[inline]
pub fn request_payload(req: Request) -> u64 {
    let mut acc = 0u64;
    for lbn in req.lbn..req.end() {
        acc = acc.wrapping_add(mix64(lbn ^ 0xA076_1D64_78BD_642F));
    }
    acc
}

/// A deterministic, seeded description of the faults one disk will
/// experience. An empty (default) plan injects nothing and costs nothing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    media_errors: BTreeSet<Lbn>,
    transient_prob: f64,
    timeout_ms: f64,
    max_consecutive_transients: u32,
    slow_read_prob: f64,
    slow_read_extra_ms: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (same as `FaultPlan::default()`).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An empty plan carrying a seed for the probabilistic draws.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            max_consecutive_transients: 2,
            ..FaultPlan::default()
        }
    }

    /// Add a latent media error: any read or write touching `lbn` fails
    /// with [`DiskError::MediaError`] until the block is remapped away.
    pub fn with_media_error(mut self, lbn: Lbn) -> Self {
        self.media_errors.insert(lbn);
        self
    }

    /// Add several latent media errors at once.
    pub fn with_media_errors(mut self, lbns: impl IntoIterator<Item = Lbn>) -> Self {
        self.media_errors.extend(lbns);
        self
    }

    /// Enable transient command timeouts: each command independently
    /// fails with probability `prob` (clamped to `[0, 1]`), costing
    /// `timeout_ms` of wall-clock before the drive reports
    /// [`DiskError::TransientTimeout`]. At most
    /// [`max_consecutive_transients`](Self::with_max_consecutive_transients)
    /// commands in a row fail, so a bounded retry loop always converges.
    pub fn with_transients(mut self, prob: f64, timeout_ms: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&prob), "transient prob {prob} outside [0, 1]");
        debug_assert!(timeout_ms.is_finite() && timeout_ms >= 0.0);
        self.transient_prob = if prob.is_nan() { 0.0 } else { prob.clamp(0.0, 1.0) };
        self.timeout_ms = timeout_ms.max(0.0);
        self
    }

    /// Cap on back-to-back transient failures (default 2). The injector
    /// forces a success after this many consecutive transients, which is
    /// what makes `max_retries >= cap` a recovery guarantee.
    pub fn with_max_consecutive_transients(mut self, cap: u32) -> Self {
        self.max_consecutive_transients = cap;
        self
    }

    /// Enable slow-read tail latency: each otherwise-successful command
    /// independently pays `extra_ms` of additional rotational delay with
    /// probability `prob` (clamped to `[0, 1]`).
    pub fn with_slow_reads(mut self, prob: f64, extra_ms: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&prob), "slow-read prob {prob} outside [0, 1]");
        debug_assert!(extra_ms.is_finite() && extra_ms >= 0.0);
        self.slow_read_prob = if prob.is_nan() { 0.0 } else { prob.clamp(0.0, 1.0) };
        self.slow_read_extra_ms = extra_ms.max(0.0);
        self
    }

    /// Whether this plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.media_errors.is_empty() && self.transient_prob <= 0.0 && self.slow_read_prob <= 0.0
    }

    /// The latent media errors, ascending.
    pub fn media_errors(&self) -> impl Iterator<Item = Lbn> + '_ {
        self.media_errors.iter().copied()
    }

    /// Wall-clock cost of one transient timeout.
    pub fn timeout_ms(&self) -> f64 {
        self.timeout_ms
    }

    /// Extra latency of one slow read.
    pub fn slow_read_extra_ms(&self) -> f64 {
        self.slow_read_extra_ms
    }

    /// The first latent media error inside `[start, end)`, if any.
    pub fn first_media_error_in(&self, start: Lbn, end: Lbn) -> Option<Lbn> {
        self.media_errors.range(start..end).next().copied()
    }

    /// The raw (uncapped) transient draw for command `n`.
    #[inline]
    fn raw_transient(&self, n: u64) -> bool {
        self.transient_prob > 0.0 && draw(self.seed, STREAM_TRANSIENT, n) < self.transient_prob
    }

    /// The slow-read draw for command `n`.
    #[inline]
    fn slow_read(&self, n: u64) -> bool {
        self.slow_read_prob > 0.0 && draw(self.seed, STREAM_SLOW_READ, n) < self.slow_read_prob
    }

    /// Independently recompute the number of transients the injector
    /// emits over the first `commands` commands — the replayable schedule
    /// a reconciliation test checks retry counters against.
    pub fn count_transients(&self, commands: u64) -> u64 {
        let mut run = 0u32;
        let mut count = 0u64;
        for n in 0..commands {
            if self.raw_transient(n) && run < self.max_consecutive_transients {
                run += 1;
                count += 1;
            } else {
                run = 0;
            }
        }
        count
    }
}

/// Cumulative injected-fault counts, by kind. `commands` counts every
/// admission (successful or not), which is the index space of the
/// per-command draws.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Commands admitted (the draw-index high-water mark).
    pub commands: u64,
    /// Transient timeouts injected.
    pub transients: u64,
    /// Media errors reported (one per failing admission, so a block
    /// re-read before being remapped counts again).
    pub media_errors: u64,
    /// Slow reads injected.
    pub slow_reads: u64,
}

impl FaultCounts {
    /// Accumulate another disk's counts.
    pub fn merge(&mut self, other: &FaultCounts) {
        self.commands += other.commands;
        self.transients += other.transients;
        self.media_errors += other.media_errors;
        self.slow_reads += other.slow_reads;
    }
}

/// What the injector decided for one admitted command.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultDecision {
    /// Proceed; `slow_extra_ms` is zero unless a slow read was drawn.
    Proceed {
        /// Extra rotational delay to charge (0.0 for a normal command).
        slow_extra_ms: f64,
    },
    /// Fail with [`DiskError::TransientTimeout`] after `timeout_ms`.
    Transient {
        /// Wall-clock the drive burns before reporting the timeout.
        timeout_ms: f64,
    },
    /// Fail with [`DiskError::MediaError`] at `lbn`.
    Media {
        /// The unreadable block.
        lbn: Lbn,
    },
}

/// Per-disk fault state: the plan plus the command counter and the
/// consecutive-transient run length that make the schedule deterministic.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    run: u32,
    counts: FaultCounts,
}

impl FaultInjector {
    /// Fresh injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            run: 0,
            counts: FaultCounts::default(),
        }
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injected-fault counts so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// Rewind the schedule to command zero (plan unchanged).
    pub fn reset(&mut self) {
        self.run = 0;
        self.counts = FaultCounts::default();
    }

    /// Admit one command covering `[lbn, lbn + nblocks)` and decide its
    /// fate. Transients are drawn first (a timeout aborts the command
    /// before the media is touched); then latent media errors; then the
    /// slow-read tail.
    pub fn admit(&mut self, lbn: Lbn, nblocks: u64) -> FaultDecision {
        let n = self.counts.commands;
        self.counts.commands += 1;
        if self.plan.raw_transient(n) && self.run < self.plan.max_consecutive_transients {
            self.run += 1;
            self.counts.transients += 1;
            return FaultDecision::Transient {
                timeout_ms: self.plan.timeout_ms,
            };
        }
        self.run = 0;
        if let Some(bad) = self.plan.first_media_error_in(lbn, lbn + nblocks) {
            self.counts.media_errors += 1;
            return FaultDecision::Media { lbn: bad };
        }
        if self.plan.slow_read(n) {
            self.counts.slow_reads += 1;
            return FaultDecision::Proceed {
                slow_extra_ms: self.plan.slow_read_extra_ms,
            };
        }
        FaultDecision::Proceed { slow_extra_ms: 0.0 }
    }
}

/// Per-request recovery record attached to every
/// [`ServiceEvent`](crate::ServiceEvent): what faults the request hit and
/// what recovering from them cost. All-zero (the default) for a clean
/// request, so fault-free runs carry no extra information and no extra
/// float operations.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultOutcome {
    /// Transient timeouts absorbed while serving this request.
    pub transients: u32,
    /// Retries issued (one per absorbed transient).
    pub retries: u32,
    /// Media errors encountered.
    pub media_errors: u32,
    /// Bad blocks remapped to spares.
    pub remaps: u32,
    /// Slow reads absorbed.
    pub slow_reads: u32,
    /// Physical sub-requests beyond the first (a request split around
    /// remapped blocks serves as several commands).
    pub extra_segments: u32,
    /// Wall-clock spent on failed attempts, backoff and segmentation —
    /// everything beyond the successful attempts' own timing components.
    pub recovery_ms: f64,
}

impl FaultOutcome {
    /// Whether the request was served on the unfaulted fast path (no
    /// faults, no splits, no recovery time).
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.transients == 0
            && self.retries == 0
            && self.media_errors == 0
            && self.remaps == 0
            && self.slow_reads == 0
            && self.extra_segments == 0
    }

    /// The elapsed wall-clock this outcome adds on top of the request's
    /// timing components (zero for clean requests).
    #[inline]
    pub fn recovery_total_ms(&self) -> f64 {
        self.recovery_ms
    }
}

/// Convenience: classify a service error as recoverable-by-retry.
pub fn is_transient(err: &DiskError) -> bool {
    matches!(err, DiskError::TransientTimeout { .. })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        let mut inj = FaultInjector::new(plan);
        for lbn in 0..200u64 {
            assert_eq!(
                inj.admit(lbn, 4),
                FaultDecision::Proceed { slow_extra_ms: 0.0 }
            );
        }
        assert_eq!(inj.counts().transients, 0);
        assert_eq!(inj.counts().commands, 200);
    }

    #[test]
    fn transient_schedule_is_deterministic_and_replayable() {
        let plan = FaultPlan::new(42).with_transients(0.3, 5.0);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan.clone());
        for lbn in 0..500u64 {
            assert_eq!(a.admit(lbn, 1), b.admit(lbn, 1));
        }
        assert_eq!(a.counts(), b.counts());
        assert!(a.counts().transients > 0, "p=0.3 over 500 draws must fire");
        // The pure replay matches the injector's incremental schedule.
        assert_eq!(plan.count_transients(500), a.counts().transients);
    }

    #[test]
    fn consecutive_transients_are_capped() {
        let plan = FaultPlan::new(7)
            .with_transients(1.0, 5.0)
            .with_max_consecutive_transients(3);
        let mut inj = FaultInjector::new(plan);
        let mut run = 0u32;
        for lbn in 0..100u64 {
            match inj.admit(lbn, 1) {
                FaultDecision::Transient { .. } => {
                    run += 1;
                    assert!(run <= 3, "more than 3 transients in a row");
                }
                _ => run = 0,
            }
        }
        // With p=1.0 the pattern is exactly 3 fails + 1 forced success.
        assert_eq!(inj.counts().transients, 75);
    }

    #[test]
    fn media_errors_hit_only_covering_requests() {
        let plan = FaultPlan::new(0).with_media_error(100);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(
            inj.admit(90, 5),
            FaultDecision::Proceed { slow_extra_ms: 0.0 }
        );
        assert_eq!(inj.admit(98, 5), FaultDecision::Media { lbn: 100 });
        assert_eq!(inj.admit(100, 1), FaultDecision::Media { lbn: 100 });
        assert_eq!(
            inj.admit(101, 5),
            FaultDecision::Proceed { slow_extra_ms: 0.0 }
        );
        assert_eq!(inj.counts().media_errors, 2);
    }

    #[test]
    fn slow_reads_fire_with_configured_cost() {
        let plan = FaultPlan::new(3).with_slow_reads(1.0, 2.5);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(
            inj.admit(0, 1),
            FaultDecision::Proceed { slow_extra_ms: 2.5 }
        );
        assert_eq!(inj.counts().slow_reads, 1);
    }

    #[test]
    fn reset_rewinds_the_schedule() {
        let plan = FaultPlan::new(11).with_transients(0.5, 1.0);
        let mut inj = FaultInjector::new(plan);
        let first: Vec<FaultDecision> = (0..64u64).map(|l| inj.admit(l, 1)).collect();
        inj.reset();
        let second: Vec<FaultDecision> = (0..64u64).map(|l| inj.admit(l, 1)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn payload_is_order_independent_and_length_sensitive() {
        let whole = request_payload(Request::new(10, 6));
        let split = request_payload(Request::new(10, 2))
            .wrapping_add(request_payload(Request::new(12, 4)));
        assert_eq!(whole, split, "payload must commute across splits");
        assert_ne!(whole, request_payload(Request::new(10, 5)));
        assert_ne!(whole, request_payload(Request::new(11, 6)));
    }

    #[test]
    fn fault_outcome_cleanliness() {
        assert!(FaultOutcome::default().is_clean());
        let dirty = FaultOutcome {
            transients: 1,
            ..FaultOutcome::default()
        };
        assert!(!dirty.is_clean());
    }
}
