//! Incremental SPTF selection: rotational-arrival bands per cylinder
//! group, repaired per head movement instead of rescanned.
//!
//! The reference SPTF loop in [`crate::scheduler`] evaluates every
//! pending request per serve — `O(n²)` service-time estimates per batch.
//! This module keeps the pending set in a structure that lets each round
//! evaluate only the handful of candidates that can actually win, while
//! remaining **bit-identical** to the reference scan: same serve order
//! on every input, including ties.
//!
//! # Structure
//!
//! * Pending single-track requests are bucketed per physical track
//!   (`(cylinder, surface)`), each bucket sorted by the start angle of
//!   the request's first sector — its *rotational-arrival band*.
//!   Buckets of one cylinder form a cylinder group, and groups live in a
//!   `BTreeMap` keyed by cylinder index.
//! * Each round walks cylinder groups outward from the head's cylinder
//!   in non-decreasing distance order. The walk stops as soon as the
//!   distance-`d` lower bound `overhead + seek_floor(d) + min_transfer`
//!   exceeds the best estimate found so far —
//!   [`DiskGeometry::seek_floor_ms`] is monotone in `d`, so no farther
//!   group can hold a winner.
//! * Within a bucket, items are scanned in circular angle order starting
//!   just after the platter phase at arrival time, so their rotational
//!   waits are monotone non-decreasing; the scan stops once
//!   `overhead + positioning + wait + min_transfer` exceeds the best.
//! * Requests eligible for the read-ahead fast path (their first LBN
//!   continues the previous transfer) are found through a by-LBN index
//!   and evaluated *first* each round — their estimate skips positioning
//!   and rotation entirely, so the band bounds above do not cover them.
//! * Multi-track requests are banded by their *first* track segment:
//!   the exact estimate is the per-segment walk, but its total is
//!   provably at least `overhead + positioning(first track) +
//!   wait(first sector) + first-segment transfer` in `total_ms`
//!   addition order, so the same bucket bounds prune them. (An early
//!   design kept them on an exhaustively-rescanned side list; under
//!   SPTF starvation they are preferentially left behind and grew to
//!   ~44% of a steady-state TCQ window, degrading selection back to a
//!   linear rescan — see `BENCH_pr6.json`'s candidates-per-decision
//!   trendline.)
//! * Served slots are recycled through a free list, so memory — and the
//!   cache footprint of the entry arena — is proportional to the live
//!   window, not to the total number of requests streamed through a
//!   queued batch.
//!
//! # Exactness
//!
//! Candidate estimates always come from [`DiskSim::estimate_profiled`] —
//! the same call, on the same [`RequestProfile`], as the reference scan
//! makes, so every evaluated estimate is the same float. The pruning
//! bounds reuse the estimator's own intermediate floats (memoized
//! positioning, the shared rotational-wait routine) combined in the same
//! left-to-right addition order as `RequestTiming::total_ms`, and IEEE
//! addition is monotone, so a pruned candidate provably could not have
//! beaten the incumbent. Bounds are compared *strictly* (`> best`), so
//! exact ties are never pruned. Ties are then resolved exactly as the
//! reference resolves them: the reference keeps the first strictly
//! smaller estimate while scanning its pending `Vec` (which it compacts
//! with `swap_remove`), i.e. it picks the minimum of
//! `(estimate, position in the pending vec)` — so the selector mirrors
//! that vec's order (same `swap_remove` compaction) and minimizes the
//! same pair.

use std::collections::{BTreeMap, HashMap};

use crate::error::Result;
use crate::geometry::{Lbn, ROTATION_WRAP_GUARD};
use crate::sim::{DiskSim, Request, RequestProfile, SeekMemo};

/// Dense pending-request identifier, assigned at admission.
type Slot = u32;

/// `vec_pos` sentinel for served (removed) slots.
const GONE: usize = usize::MAX;

/// What the selector did for one batch — the raw material for the
/// scheduler counters threaded through telemetry.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SelectorStats {
    /// Track buckets whose rotational-band scan was entered.
    pub bucket_scans: u64,
    /// Exact service-time estimates evaluated during selection.
    pub candidates_examined: u64,
    /// Incremental structure repairs (admissions plus removals).
    pub repairs: u64,
}

struct Entry {
    profile: RequestProfile,
    rank: usize,
    /// Bucket key: the first track segment's `(cylinder, surface)`.
    key: (u64, u32),
}

/// One physical track's pending requests, sorted by start angle.
struct TrackBucket {
    surface: u32,
    /// Insert-only minimum of members' first-segment transfer times
    /// (the whole transfer for single-track members — a lower bound on
    /// any member's total transfer either way). Never raised on
    /// removal — a stale minimum is still a valid lower bound, and
    /// keeping it avoids a rescan per removal.
    min_xfer: f64,
    /// `(start-angle bits, slot)`, ascending. Angles are non-negative,
    /// so the IEEE bit pattern orders exactly like the float.
    items: Vec<(u64, Slot)>,
}

/// All pending tracks of one cylinder.
struct CylGroup {
    tracks: Vec<TrackBucket>,
}

/// The incremental selection structure behind the `*_incremental`
/// scheduler entry points.
pub(crate) struct SptfSelector {
    entries: Vec<Entry>,
    /// Mirror of the reference scan's pending `Vec` (swap_remove
    /// compaction), for exact tie-breaking.
    vec_order: Vec<Slot>,
    /// Slot → position in `vec_order`, [`GONE`] once served.
    vec_pos: Vec<usize>,
    cyls: BTreeMap<u64, CylGroup>,
    /// First-LBN index, for the read-ahead (prefetch) fast path.
    // staticcheck: allow(det-unordered-collection) — keyed-only index: accessed via get/get_mut/entry/remove by exact LBN, never iterated; the per-LBN Vec preserves admission order, and ties still resolve through the mirrored pending-vec position.
    by_lbn: HashMap<Lbn, Vec<Slot>>,
    /// Served slots available for reuse. Recycling keeps `entries`
    /// sized by the *live* window, not by total admissions — a streamed
    /// queued-SPTF batch of millions of requests holds `queue_depth`
    /// entries, densely packed, instead of an ever-growing arena whose
    /// random live slots defeat the cache.
    free: Vec<Slot>,
    /// Insert-only global minimum first-segment transfer time.
    min_xfer: f64,
    live: usize,
    stats: SelectorStats,
}

/// Keep the lexicographically smaller `(estimate, vec position)` — the
/// reference scan's exact winner. `best` holds `(est, vec_pos, slot)`.
fn consider(best: &mut Option<(f64, usize, Slot)>, est: f64, pos: usize, slot: Slot) {
    debug_assert_ne!(pos, GONE);
    match best {
        None => *best = Some((est, pos, slot)),
        // staticcheck: allow(float-cmp) — exact tie detection is the point: equal estimates fall through to the vec-position tie-break, replicating the reference argmin bit for bit.
        Some((b_est, b_pos, _)) => {
            if est < *b_est || (est == *b_est && pos < *b_pos) {
                *best = Some((est, pos, slot));
            }
        }
    }
}

impl SptfSelector {
    /// Empty selector with room for `n` admissions.
    pub(crate) fn with_capacity(n: usize) -> Self {
        SptfSelector {
            entries: Vec::with_capacity(n),
            vec_order: Vec::with_capacity(n),
            vec_pos: Vec::with_capacity(n),
            cyls: BTreeMap::new(),
            // staticcheck: allow(det-unordered-collection) — same keyed-only index as the field declaration above; construction site.
            by_lbn: HashMap::with_capacity(n),
            free: Vec::new(),
            min_xfer: f64::INFINITY,
            live: 0,
            stats: SelectorStats::default(),
        }
    }

    /// Number of pending requests.
    #[inline]
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// Batch counters accumulated so far.
    #[inline]
    pub(crate) fn stats(&self) -> SelectorStats {
        self.stats
    }

    /// Admit one request. Admission order must match the reference
    /// scan's pending-vec push order (issue order).
    pub(crate) fn admit(&mut self, rank: usize, profile: RequestProfile) {
        // Reuse a served slot if one is free (slot numbers never order
        // selection — ties break on the mirrored vec position — so
        // recycling is observationally invisible).
        let slot = self.free.pop().unwrap_or(self.entries.len() as Slot);
        let lbn = profile.request().lbn;
        // Band every request — multi-track included — by its first track
        // segment; the first-segment transfer lower-bounds the total
        // transfer, keeping every bucket bound valid for every member.
        let xfer = profile.first_segment_xfer_ms();
        let loc = profile.loc();
        let cyl = loc.cylinder;
        let surface = loc.surface;
        let item = (profile.start_angle().to_bits(), slot);
        let group = self
            .cyls
            .entry(cyl)
            .or_insert_with(|| CylGroup { tracks: Vec::new() });
        let bucket = match group.tracks.iter_mut().position(|t| t.surface == surface) {
            Some(i) => &mut group.tracks[i],
            None => {
                group.tracks.push(TrackBucket {
                    surface,
                    min_xfer: f64::INFINITY,
                    items: Vec::new(),
                });
                // staticcheck: allow(no-unwrap) — pushed one line up.
                group.tracks.last_mut().expect("just pushed")
            }
        };
        let at = bucket.items.partition_point(|&it| it < item);
        bucket.items.insert(at, item);
        bucket.min_xfer = bucket.min_xfer.min(xfer);
        self.min_xfer = self.min_xfer.min(xfer);
        let key = (cyl, surface);
        self.by_lbn.entry(lbn).or_default().push(slot);
        let entry = Entry { profile, rank, key };
        if (slot as usize) == self.entries.len() {
            self.vec_pos.push(self.vec_order.len());
            self.entries.push(entry);
        } else {
            debug_assert_eq!(self.vec_pos[slot as usize], GONE, "reused a live slot");
            self.vec_pos[slot as usize] = self.vec_order.len();
            self.entries[slot as usize] = entry;
        }
        self.vec_order.push(slot);
        self.live += 1;
        self.stats.repairs += 1;
    }

    /// Pick the request the reference scan would pick from the current
    /// head state: the pending minimum of `(estimate, vec position)`.
    /// Returns `None` once the selector is drained.
    pub(crate) fn select(&mut self, sim: &DiskSim, memo: &mut SeekMemo) -> Result<Option<Slot>> {
        if self.live == 0 {
            return Ok(None);
        }
        let geom = sim.geometry();
        let state = sim.state();
        let oh = geom.command_overhead_ms;
        let mut best: Option<(f64, usize, Slot)> = None;
        let mut candidates = 0u64;
        let mut bucket_scans = 0u64;

        // 1. Read-ahead continuations: their estimate skips positioning
        //    and rotation, so the band bounds below do not cover them —
        //    evaluate them exactly, first.
        if let Some(lbn) = state.last_end_lbn {
            if let Some(slots) = self.by_lbn.get(&lbn) {
                for &slot in slots {
                    let est = sim.estimate_profiled(&self.entries[slot as usize].profile, memo)?;
                    candidates += 1;
                    consider(&mut best, est, self.vec_pos[slot as usize], slot);
                }
            }
        }

        // 2. Outward cylinder walk in non-decreasing distance order.
        let head = state.cylinder;
        let mut near = self.cyls.range(..=head).rev();
        let mut far = self.cyls.range(head + 1..);
        let mut near_cur = near.next();
        let mut far_cur = far.next();
        while near_cur.is_some() || far_cur.is_some() {
            let near_d = near_cur.map(|(c, _)| head - *c);
            let far_d = far_cur.map(|(c, _)| *c - head);
            let take_near = match (near_d, far_d) {
                (Some(a), Some(b)) => a <= b,
                (Some(_), None) => true,
                _ => false,
            };
            let (cyl, group, dist) = if take_near {
                // staticcheck: allow(no-unwrap) — take_near implies near_cur is Some.
                let (c, g) = near_cur.expect("checked take_near");
                near_cur = near.next();
                (*c, g, head - *c)
            } else {
                // staticcheck: allow(no-unwrap) — loop condition implies far_cur is Some here.
                let (c, g) = far_cur.expect("checked loop condition");
                far_cur = far.next();
                (*c, g, *c - head)
            };
            if let Some((b_est, _, _)) = best {
                // No request at distance >= dist can beat the incumbent:
                // its estimate is at least overhead + seek floor + its
                // transfer, accumulated in total_ms order.
                let floor = (oh + geom.seek_floor_ms(dist)) + self.min_xfer;
                if floor > b_est {
                    break;
                }
            }
            for bucket in &group.tracks {
                let pos = memo.positioning(geom, head, state.surface, cyl, bucket.surface);
                let base = oh + pos;
                if let Some((b_est, _, _)) = best {
                    if base + bucket.min_xfer > b_est {
                        continue;
                    }
                }
                bucket_scans += 1;
                // Circular scan in arrival order, starting at the first
                // item whose wait `rotational_wait_from_angle` measures
                // forward from the arrival phase (`delta >= 0`, or
                // wrapped into the clamp window and reported as zero) —
                // every item before it waits a near-full revolution, so
                // scanning from here keeps the per-item waits monotone
                // non-decreasing, the property the early `break` below
                // relies on. The predicate replays the clamp's exact
                // float expressions (`angle - phase`, `+ 1.0`,
                // `1.0 - ROTATION_WRAP_GUARD`): a separately computed
                // angle threshold can disagree with the clamp by an ulp
                // for boundary angles and misplace a zero-wait item
                // last (or a wrapped item first).
                let t_arrive = (state.time_ms + oh) + pos;
                let phase = geom.phase_at(t_arrive);
                let n = bucket.items.len();
                let start = bucket.items.partition_point(|&(abits, _)| {
                    let delta = f64::from_bits(abits) - phase;
                    delta < 0.0 && delta + 1.0 <= 1.0 - ROTATION_WRAP_GUARD
                });
                for k in 0..n {
                    let (abits, slot) = bucket.items[(start + k) % n];
                    let wait = geom.rotational_wait_from_angle(f64::from_bits(abits), t_arrive);
                    if let Some((b_est, _, _)) = best {
                        if (base + wait) + bucket.min_xfer > b_est {
                            break;
                        }
                    }
                    let est =
                        sim.estimate_profiled(&self.entries[slot as usize].profile, memo)?;
                    candidates += 1;
                    consider(&mut best, est, self.vec_pos[slot as usize], slot);
                }
            }
        }

        self.stats.candidates_examined += candidates;
        self.stats.bucket_scans += bucket_scans;
        debug_assert!(best.is_some(), "live > 0 must yield a candidate");
        Ok(best.map(|(_, _, slot)| slot))
    }

    /// Remove a served request from every index, mirroring the reference
    /// scan's `swap_remove` on the pending vec. Returns the request's
    /// admission rank and the request itself.
    pub(crate) fn remove(&mut self, slot: Slot) -> (usize, Request) {
        let (rank, req, key, abits) = {
            let e = &self.entries[slot as usize];
            (
                e.rank,
                e.profile.request(),
                e.key,
                e.profile.start_angle().to_bits(),
            )
        };
        // Pending-vec mirror: identical compaction to the reference.
        let at = self.vec_pos[slot as usize];
        debug_assert_ne!(at, GONE, "slot served twice");
        self.vec_order.swap_remove(at);
        if at < self.vec_order.len() {
            self.vec_pos[self.vec_order[at] as usize] = at;
        }
        self.vec_pos[slot as usize] = GONE;
        // First-LBN index.
        if let Some(slots) = self.by_lbn.get_mut(&req.lbn) {
            if let Some(i) = slots.iter().position(|&s| s == slot) {
                slots.swap_remove(i);
            }
            if slots.is_empty() {
                self.by_lbn.remove(&req.lbn);
            }
        }
        // Band structure.
        let (cyl, surface) = key;
        if let Some(group) = self.cyls.get_mut(&cyl) {
            if let Some(ti) = group.tracks.iter().position(|t| t.surface == surface) {
                let bucket = &mut group.tracks[ti];
                if let Ok(i) = bucket.items.binary_search(&(abits, slot)) {
                    bucket.items.remove(i);
                }
                if bucket.items.is_empty() {
                    group.tracks.swap_remove(ti);
                }
            }
            if group.tracks.is_empty() {
                self.cyls.remove(&cyl);
            }
        }
        self.free.push(slot);
        self.live -= 1;
        self.stats.repairs += 1;
        (rank, req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{DiskBuilder, ZoneSpec};

    fn sim() -> DiskSim {
        let geom = DiskBuilder::new("selector-test")
            .rpm(10_000.0)
            .surfaces(4)
            .zones(vec![ZoneSpec {
                cylinders: 400,
                sectors_per_track: 120,
            }])
            .settle_ms(1.2)
            .settle_cylinders(8)
            .head_switch_ms(0.9)
            .command_overhead_ms(0.03)
            .build()
            .unwrap();
        DiskSim::new(geom)
    }

    /// Drain the selector against a brute-force argmin over the same
    /// profiles and assert every pick matches, serving each winner.
    #[test]
    fn drains_in_reference_order() {
        let mut s = sim();
        let lbns: Vec<u64> = (0..300u64).map(|i| (i * 48_611) % 190_000).collect();
        let mut selector = SptfSelector::with_capacity(lbns.len());
        let mut naive: Vec<(usize, RequestProfile)> = Vec::new();
        for (rank, &lbn) in lbns.iter().enumerate() {
            let req = Request::new(lbn, 1 + (lbn % 5));
            let p = RequestProfile::new(s.geometry(), req).unwrap();
            selector.admit(rank, p.clone());
            naive.push((rank, p));
        }
        let mut memo = SeekMemo::new();
        let mut naive_memo = SeekMemo::new();
        while let Some(slot) = selector.select(&s, &mut memo).unwrap() {
            let mut best_idx = 0;
            let mut best_est = f64::INFINITY;
            for (i, (_, profile)) in naive.iter().enumerate() {
                let est = s.estimate_profiled(profile, &mut naive_memo).unwrap();
                if est < best_est {
                    best_est = est;
                    best_idx = i;
                }
            }
            let (want_rank, profile) = naive.swap_remove(best_idx);
            let (got_rank, got_req) = selector.remove(slot);
            assert_eq!(got_rank, want_rank);
            assert_eq!(got_req, profile.request());
            s.service(got_req).unwrap();
            memo.begin_round();
            naive_memo.begin_round();
        }
        assert!(naive.is_empty());
        assert_eq!(selector.live(), 0);
        // The whole point: far fewer exact estimates than n²/2.
        let n = lbns.len() as u64;
        assert!(
            selector.stats().candidates_examined < n * (n + 1) / 4,
            "{} candidates for n = {n}",
            selector.stats().candidates_examined
        );
    }

    /// Multi-track requests are banded by their first segment, not kept
    /// on an exhaustively rescanned side list: a window dominated by
    /// track-crossing requests must still drain in reference order with
    /// far fewer exact estimates than the quadratic rescan performs.
    #[test]
    fn multi_track_heavy_window_stays_pruned() {
        let mut s = sim();
        // Every request starts five sectors before its track boundary
        // (spt = 120) and spans ten blocks, so all of them cross tracks.
        let lbns: Vec<u64> = (0..240u64).map(|i| ((i * 97) % 1500) * 120 + 115).collect();
        let mut selector = SptfSelector::with_capacity(lbns.len());
        let mut naive: Vec<(usize, RequestProfile)> = Vec::new();
        for (rank, &lbn) in lbns.iter().enumerate() {
            let req = Request::new(lbn, 10);
            let p = RequestProfile::new(s.geometry(), req).unwrap();
            assert!(p.single_track_xfer_ms().is_none(), "request must cross a track");
            selector.admit(rank, p.clone());
            naive.push((rank, p));
        }
        let mut memo = SeekMemo::new();
        let mut naive_memo = SeekMemo::new();
        while let Some(slot) = selector.select(&s, &mut memo).unwrap() {
            let mut best_idx = 0;
            let mut best_est = f64::INFINITY;
            for (i, (_, profile)) in naive.iter().enumerate() {
                let est = s.estimate_profiled(profile, &mut naive_memo).unwrap();
                if est < best_est {
                    best_est = est;
                    best_idx = i;
                }
            }
            let (want_rank, profile) = naive.swap_remove(best_idx);
            let (got_rank, got_req) = selector.remove(slot);
            assert_eq!(got_rank, want_rank);
            assert_eq!(got_req, profile.request());
            s.service(got_req).unwrap();
            memo.begin_round();
            naive_memo.begin_round();
        }
        assert!(naive.is_empty());
        let n = lbns.len() as u64;
        assert!(
            selector.stats().candidates_examined < n * (n + 1) / 4,
            "{} candidates for n = {n}",
            selector.stats().candidates_examined
        );
    }

    /// Slot recycling: a streamed admit/serve pattern (the queued-SPTF
    /// shape) keeps the entry arena sized by the live window, not by
    /// total admissions.
    #[test]
    fn slots_are_recycled_for_streamed_windows() {
        let mut s = sim();
        let window = 8usize;
        let mut selector = SptfSelector::with_capacity(window);
        let mut memo = SeekMemo::new();
        let mk = |rank: usize| Request::new(((rank as u64) * 48_611) % 190_000, 1);
        for rank in 0..window {
            selector.admit(rank, RequestProfile::new(s.geometry(), mk(rank)).unwrap());
        }
        for rank in window..512 {
            let slot = selector.select(&s, &mut memo).unwrap().unwrap();
            let (_, req) = selector.remove(slot);
            s.service(req).unwrap();
            memo.begin_round();
            selector.admit(rank, RequestProfile::new(s.geometry(), mk(rank)).unwrap());
        }
        while let Some(slot) = selector.select(&s, &mut memo).unwrap() {
            let (_, req) = selector.remove(slot);
            s.service(req).unwrap();
            memo.begin_round();
        }
        assert_eq!(selector.live(), 0);
        assert_eq!(
            selector.entries.len(),
            window,
            "arena grew past the live window"
        );
    }

    /// Duplicate requests (same LBN, same length) tie exactly; the
    /// winner must be the one earlier in the mirrored pending vec.
    #[test]
    fn exact_ties_resolve_by_vec_position() {
        let mut s = sim();
        let mut selector = SptfSelector::with_capacity(4);
        for rank in 0..4usize {
            let p = RequestProfile::new(s.geometry(), Request::single(77_777)).unwrap();
            selector.admit(rank, p);
        }
        let mut memo = SeekMemo::new();
        let mut order = Vec::new();
        while let Some(slot) = selector.select(&s, &mut memo).unwrap() {
            let (rank, req) = selector.remove(slot);
            order.push(rank);
            s.service(req).unwrap();
            memo.begin_round();
        }
        // Reference: picks vec position 0 each round; swap_remove then
        // moves the last element into position 0, so the service order
        // over four identical requests is 0, 3, 2, 1.
        assert_eq!(order, vec![0, 3, 2, 1]);
    }
}
