//! The pluggable device API: every storage backend the reproduction can
//! drive sits behind the [`DeviceModel`] trait.
//!
//! The trait abstracts exactly the service interface the upper layers
//! (`lvm`, `query`, `store`, `conformance`, `bench`) consume: single
//! reads/writes, batch service under a scheduling [`Discipline`], service
//! estimation, [`ServiceEvent`] observation, transition classification,
//! and capacity/geometry queries. [`DiskSim`] — the paper's rotating
//! drive — is the first implementation and is **bit-identical** behind
//! the trait to the pre-trait direct calls: its batch methods delegate to
//! the same scheduler internals ([`crate::scheduler::service_batch_serving`]).
//!
//! Two further backends ship in this crate:
//!
//! * [`crate::ssd::SsdModel`] — a multi-queue SSD (per-channel parallel
//!   service, queue-depth-dependent command latency, no settle/rotate
//!   phases).
//! * [`crate::imr::ImrModel`] — interlaced magnetic recording on top of
//!   the rotating mechanics (bottom-track writes read-modify-write the
//!   interlaced top-track neighbors).
//!
//! Backends are constructible by name through [`build_backend`], so the
//! perf/figures binaries can select one with a CLI flag.

use crate::error::{DiskError, Result};
use crate::geometry::DiskGeometry;
use crate::imr::{ImrConfig, ImrModel};
use crate::observe::{ServiceEvent, Transition};
use crate::scheduler::{plain_serve, service_batch_serving, BatchTiming, Discipline};
use crate::sim::{AccessKind, DiskSim, Request, RequestTiming};
use crate::ssd::{SsdConfig, SsdModel};
use crate::stats::AccessStats;

/// The service interface every storage backend implements.
///
/// # Contract
///
/// * **Deterministic.** Identical call sequences produce identical
///   timings, events and counters — no wall clock, no entropy. This is
///   what lets the engine replay sweeps bit-identically at any thread
///   count.
/// * **Simulated clock.** [`DeviceModel::now_ms`] only advances through
///   service and [`DeviceModel::idle`].
/// * **Event invariant.** Every emitted [`ServiceEvent`] satisfies
///   `after.time_ms - before.time_ms == elapsed_ms()` (within float
///   epsilon). What the `timing` components *mean* is backend-specific —
///   see `docs/backends.md` for the per-backend phase semantics.
/// * **Payload identity.** [`BatchTiming::payload`] depends only on the
///   logical blocks delivered, never on the backend or the service
///   order: two backends serving the same request multiset report the
///   same payload.
///
/// The trait is object-safe; upper layers may hold `Box<dyn DeviceModel>`
/// (see [`build_backend`]) or stay generic for static dispatch.
pub trait DeviceModel: Send {
    /// Stable backend identifier (`"disk"`, `"ssd"`, `"imr"`), the key
    /// used by the [`build_backend`] registry.
    fn name(&self) -> &'static str;

    /// Total addressable blocks.
    fn capacity_blocks(&self) -> u64;

    /// Current simulated time in milliseconds.
    fn now_ms(&self) -> f64;

    /// Service one request of the given kind, advancing the clock.
    fn service_kind(&mut self, req: Request, kind: AccessKind) -> Result<RequestTiming>;

    /// Service one read.
    fn service(&mut self, req: Request) -> Result<RequestTiming> {
        self.service_kind(req, AccessKind::Read)
    }

    /// Service one write. Backends with asymmetric write mechanics (the
    /// rotating drive's write-settle surcharge, the IMR model's
    /// read-modify-write) charge them here.
    fn service_write(&mut self, req: Request) -> Result<RequestTiming> {
        self.service_kind(req, AccessKind::Write)
    }

    /// Estimate the service time of `req` from the current device state
    /// without performing it. Used by SPTF-style selection and admission
    /// control; does not advance the clock or mutate state.
    fn estimate(&self, req: Request) -> Result<f64>;

    /// Service a batch of read requests under `discipline`, emitting one
    /// [`ServiceEvent`] per serviced request.
    fn service_batch_observed(
        &mut self,
        requests: &[Request],
        discipline: Discipline,
        observe: &mut dyn FnMut(ServiceEvent),
    ) -> Result<BatchTiming>;

    /// [`DeviceModel::service_batch_observed`] without an observer.
    fn service_batch(&mut self, requests: &[Request], discipline: Discipline) -> Result<BatchTiming> {
        self.service_batch_observed(requests, discipline, &mut |_| {})
    }

    /// Classify how the device reached a request it serviced: the
    /// backend's own notion of sequential continuation, cheap adjacency
    /// (settle hop on the rotating drive, free-channel dispatch on the
    /// SSD) or an expensive reposition (arm seek, channel queueing).
    fn classify(&self, event: &ServiceEvent) -> Transition;

    /// Let the device sit idle for `ms` simulated milliseconds.
    fn idle(&mut self, ms: f64);

    /// Reset all device state (clock, position, stats, wear tracking) to
    /// the initial state.
    fn reset(&mut self);

    /// Reset accumulated statistics and counters without disturbing the
    /// mechanical/clock state.
    fn reset_stats(&mut self);

    /// Accumulated per-request statistics. For parallel backends the
    /// per-phase sums count device busy time, which can exceed the
    /// wall-clock makespan reported by [`BatchTiming::total_ms`].
    fn stats(&self) -> AccessStats;

    /// The rotating-disk geometry, for backends that have one. Layout
    /// translation (mappings, adjacency) is defined against a geometry,
    /// so geometry-free backends (the SSD) are still *addressed* through
    /// one — they just do not expose mechanical parameters here.
    fn geometry(&self) -> Option<&DiskGeometry> {
        None
    }

    /// Backend-specific counters for exact reconciliation in the
    /// conformance harness (e.g. per-channel serves on the SSD,
    /// neighbor-track rewrites on IMR). Keys are stable per backend;
    /// order is deterministic.
    fn counters(&self) -> Vec<(String, u64)> {
        Vec::new()
    }
}

impl<D: DeviceModel + ?Sized> DeviceModel for Box<D> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn capacity_blocks(&self) -> u64 {
        (**self).capacity_blocks()
    }
    fn now_ms(&self) -> f64 {
        (**self).now_ms()
    }
    fn service_kind(&mut self, req: Request, kind: AccessKind) -> Result<RequestTiming> {
        (**self).service_kind(req, kind)
    }
    fn service(&mut self, req: Request) -> Result<RequestTiming> {
        (**self).service(req)
    }
    fn service_write(&mut self, req: Request) -> Result<RequestTiming> {
        (**self).service_write(req)
    }
    fn estimate(&self, req: Request) -> Result<f64> {
        (**self).estimate(req)
    }
    fn service_batch_observed(
        &mut self,
        requests: &[Request],
        discipline: Discipline,
        observe: &mut dyn FnMut(ServiceEvent),
    ) -> Result<BatchTiming> {
        (**self).service_batch_observed(requests, discipline, observe)
    }
    fn service_batch(&mut self, requests: &[Request], discipline: Discipline) -> Result<BatchTiming> {
        (**self).service_batch(requests, discipline)
    }
    fn classify(&self, event: &ServiceEvent) -> Transition {
        (**self).classify(event)
    }
    fn idle(&mut self, ms: f64) {
        (**self).idle(ms)
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn reset_stats(&mut self) {
        (**self).reset_stats()
    }
    fn stats(&self) -> AccessStats {
        (**self).stats()
    }
    fn geometry(&self) -> Option<&DiskGeometry> {
        (**self).geometry()
    }
    fn counters(&self) -> Vec<(String, u64)> {
        (**self).counters()
    }
}

impl DeviceModel for DiskSim {
    fn name(&self) -> &'static str {
        "disk"
    }

    fn capacity_blocks(&self) -> u64 {
        DiskSim::geometry(self).total_blocks()
    }

    fn now_ms(&self) -> f64 {
        self.state().time_ms
    }

    fn service_kind(&mut self, req: Request, kind: AccessKind) -> Result<RequestTiming> {
        match kind {
            AccessKind::Read => DiskSim::service(self, req),
            AccessKind::Write => DiskSim::service_write(self, req),
        }
    }

    fn estimate(&self, req: Request) -> Result<f64> {
        DiskSim::estimate(self, req)
    }

    fn service_batch_observed(
        &mut self,
        requests: &[Request],
        discipline: Discipline,
        observe: &mut dyn FnMut(ServiceEvent),
    ) -> Result<BatchTiming> {
        // The same dispatcher the pre-trait free functions used: the
        // rotating backend behind the trait is bit-identical to HEAD.
        service_batch_serving(self, requests, discipline, &mut plain_serve, observe)
    }

    fn classify(&self, event: &ServiceEvent) -> Transition {
        event.transition(DiskSim::geometry(self))
    }

    fn idle(&mut self, ms: f64) {
        DiskSim::idle(self, ms)
    }

    fn reset(&mut self) {
        DiskSim::reset(self)
    }

    fn reset_stats(&mut self) {
        DiskSim::reset_stats(self)
    }

    fn stats(&self) -> AccessStats {
        *DiskSim::stats(self)
    }

    fn geometry(&self) -> Option<&DiskGeometry> {
        Some(DiskSim::geometry(self))
    }
}

/// Names accepted by [`build_backend`], in registry order.
pub const BACKEND_NAMES: [&str; 3] = ["disk", "ssd", "imr"];

/// Construct a backend by registry name, addressed through `geom`.
///
/// * `"disk"` — the rotating [`DiskSim`] on `geom` exactly.
/// * `"ssd"` — an [`SsdModel`] sized to `geom.total_blocks()` with the
///   default channel configuration ([`SsdConfig::builder`]).
/// * `"imr"` — an [`ImrModel`] interlacing `geom`'s cylinders with the
///   default RMW configuration ([`ImrConfig::builder`]).
///
/// Unknown names are a typed [`DiskError::UnknownBackend`] error.
pub fn build_backend(name: &str, geom: &DiskGeometry) -> Result<Box<dyn DeviceModel>> {
    match name {
        "disk" => Ok(Box::new(DiskSim::new(geom.clone()))),
        "ssd" => Ok(Box::new(SsdModel::new(
            SsdConfig::builder()
                .capacity_blocks(geom.total_blocks())
                .build(),
        ))),
        "imr" => Ok(Box::new(ImrModel::new(geom.clone(), ImrConfig::default()))),
        other => Err(DiskError::UnknownBackend {
            name: other.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn registry_builds_every_listed_backend() {
        let geom = profiles::small();
        for name in BACKEND_NAMES {
            let dev = build_backend(name, &geom).unwrap();
            assert_eq!(dev.name(), name);
            assert_eq!(dev.capacity_blocks(), geom.total_blocks());
            assert_eq!(dev.now_ms(), 0.0);
        }
    }

    #[test]
    fn registry_rejects_unknown_names() {
        let geom = profiles::small();
        let err = build_backend("mems", &geom).err().unwrap();
        assert_eq!(
            err,
            DiskError::UnknownBackend {
                name: "mems".into()
            }
        );
    }

    #[test]
    fn trait_batch_matches_concrete_batch_on_disk() {
        let geom = profiles::small();
        let reqs: Vec<Request> = (0..60u64)
            .map(|i| Request::single((i * 9173) % geom.total_blocks()))
            .collect();
        for discipline in [
            Discipline::InOrder,
            Discipline::AscendingLbn,
            Discipline::Sptf,
            Discipline::QueuedSptf(8),
        ] {
            let mut concrete = DiskSim::new(geom.clone());
            let direct = service_batch_serving(
                &mut concrete,
                &reqs,
                discipline,
                &mut plain_serve,
                &mut |_| {},
            )
            .unwrap();
            let mut boxed: Box<dyn DeviceModel> = Box::new(DiskSim::new(geom.clone()));
            let via_trait = boxed.service_batch(&reqs, discipline).unwrap();
            assert_eq!(direct, via_trait);
            assert_eq!(
                direct.total_ms.to_bits(),
                via_trait.total_ms.to_bits(),
                "trait dispatch must be bit-identical for {discipline:?}"
            );
        }
    }

    #[test]
    fn geometry_exposure_is_backend_specific() {
        let geom = profiles::small();
        assert!(build_backend("disk", &geom).unwrap().geometry().is_some());
        assert!(build_backend("imr", &geom).unwrap().geometry().is_some());
        assert!(build_backend("ssd", &geom).unwrap().geometry().is_none());
    }
}
