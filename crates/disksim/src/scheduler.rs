//! Request-batch servicing policies.
//!
//! Every batch entry point takes a [`Discipline`]:
//!
//! * [`Discipline::AscendingLbn`] — sort by LBN and serve in order. This
//!   is what the paper's storage manager does for the linearised mappings
//!   (Naive, Z-order, Hilbert) and for MultiMap range queries, where it
//!   "favors sequential access".
//! * [`Discipline::Sptf`] — greedy shortest-positioning-time-first, the
//!   disk's internal scheduler. When a MultiMap beam query issues all its
//!   blocks at once, SPTF discovers the semi-sequential path by itself.
//! * [`Discipline::QueuedSptf`] — SPTF over a bounded TCQ window,
//!   modelling SCSI tagged command queueing.
//! * [`Discipline::InOrder`] — serve exactly as given (FIFO baseline).
//!
//! [`service_batch_serving`] is the single dispatcher (and the hook for
//! recovery serve closures); backend-generic callers go through
//! [`crate::device::DeviceModel::service_batch`] instead. (The
//! historical per-policy free functions were `#[deprecated]` shims for
//! one release and are gone.)

use crate::error::{DiskError, Result};
use crate::fault::{request_payload, FaultOutcome};
use crate::geometry::Lbn;
use crate::observe::ServiceEvent;
use crate::selector::SptfSelector;
use crate::sim::{AccessKind, DiskSim, Request, RequestProfile, RequestTiming, SeekMemo};

/// Batch scheduling policy, the argument of
/// [`crate::device::DeviceModel::service_batch`] and
/// [`service_batch_serving`].
///
/// Each backend interprets the discipline through its own mechanics: the
/// rotating drive estimates positioning time for SPTF, the multi-queue
/// SSD picks the request whose channel frees earliest. The serve *set*
/// (and therefore [`BatchTiming::payload`]) is discipline- and
/// backend-independent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Discipline {
    /// Serve exactly in the order given (FIFO).
    InOrder,
    /// Sort by ascending LBN, then serve in order — the storage
    /// manager's policy for linearised mappings and range queries.
    AscendingLbn,
    /// Greedy shortest-positioning-time-first over the whole batch —
    /// the disk's internal scheduler given an unbounded queue.
    Sptf,
    /// SPTF over a bounded queue window: requests are admitted in issue
    /// order and the device repeatedly serves the cheapest queued one —
    /// SCSI tagged command queueing with the given queue depth.
    /// Depth `0` is a [`DiskError::ZeroQueueDepth`] error.
    QueuedSptf(usize),
}

/// Smallest SPTF window routed to the incremental selection structure.
///
/// Below this, [`service_batch_serving`] uses the linear reference scan
/// for [`Discipline::Sptf`] and [`Discipline::QueuedSptf`]: the two are
/// bit-identical in behavior (see `tests/scheduler_equivalence.rs`), but
/// building the band structure costs more than it saves on a handful of
/// candidates. The queued policy compares its *effective* window,
/// `queue_depth.min(requests.len())`, against this bound.
pub const SPTF_INCREMENTAL_MIN_WINDOW: usize = 48;

/// How a batch policy actually serves one chosen request. The default
/// ([`plain_serve`]) calls [`DiskSim::service`] directly; a storage
/// manager supplies its own closure to add retry, bad-block remapping
/// or any other recovery, returning the successful attempts' timing
/// plus a [`FaultOutcome`] describing what recovery cost.
pub type ServeFn<'a> = dyn FnMut(&mut DiskSim, Request) -> Result<(RequestTiming, FaultOutcome)> + 'a;

/// The recovery-free serve: one attempt, no fault handling.
pub fn plain_serve(sim: &mut DiskSim, req: Request) -> Result<(RequestTiming, FaultOutcome)> {
    sim.service(req).map(|t| (t, FaultOutcome::default()))
}

/// Scheduler-internal event counts for one batch — the raw material for
/// the telemetry layer's cache-efficiency counters. All zero for the
/// policies that use no memo (in-order, ascending).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// [`SeekMemo`] positioning lookups answered from the memo.
    pub seek_memo_hits: u64,
    /// [`SeekMemo`] positioning lookups that ran the seek curve.
    pub seek_memo_misses: u64,
    /// Queued-SPTF serves that evicted a request from a *full* window
    /// to admit the next pending one (TCQ window pressure); zero for
    /// full SPTF, which admits everything up front.
    pub window_evictions: u64,
    /// Rotational-band buckets whose angle scan was entered during
    /// incremental selection; zero on the linear reference path, which
    /// has no bucket structure.
    pub bucket_scans: u64,
    /// Candidate service-time estimates evaluated during selection. The
    /// reference scan evaluates every pending request per serve (`n`
    /// per round); the incremental selector evaluates only candidates
    /// its pruning bounds cannot exclude.
    pub candidates_examined: u64,
    /// Incremental-structure repairs (admissions plus removals) applied
    /// to the selector; zero on the linear reference path.
    pub selector_repairs: u64,
}

impl SchedStats {
    /// Accumulate another batch's stats.
    pub fn merge(&mut self, other: &SchedStats) {
        self.seek_memo_hits += other.seek_memo_hits;
        self.seek_memo_misses += other.seek_memo_misses;
        self.window_evictions += other.window_evictions;
        self.bucket_scans += other.bucket_scans;
        self.candidates_examined += other.candidates_examined;
        self.selector_repairs += other.selector_repairs;
    }
}

/// Outcome of servicing a batch of requests.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BatchTiming {
    /// Number of requests serviced.
    pub requests: u64,
    /// Number of blocks transferred.
    pub blocks: u64,
    /// Total busy time for the batch (including fault-recovery time).
    pub total_ms: f64,
    /// Order-independent checksum of the *logical* blocks delivered
    /// (wrapping sum of [`request_payload`] per request): two runs that
    /// returned the same payload returned exactly the same data,
    /// however the scheduler or any fault recovery reordered it.
    pub payload: u64,
    /// Scheduler-internal event counts (memo hits, window evictions).
    pub sched: SchedStats,
}

impl BatchTiming {
    fn add(&mut self, req: Request, timing: &RequestTiming, fault: &FaultOutcome) {
        self.requests += 1;
        self.blocks += req.nblocks;
        self.payload = self.payload.wrapping_add(request_payload(req));
        self.total_ms += if fault.is_clean() {
            timing.total_ms()
        } else {
            timing.total_ms() + fault.recovery_ms
        };
    }

    /// Mean I/O time per block (the paper's per-cell metric).
    pub fn per_block_ms(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.total_ms / self.blocks as f64
        }
    }

    /// Accumulate another batch served on the same disk (e.g. the
    /// degraded-mode remainder of a split batch).
    pub fn merge(&mut self, other: &BatchTiming) {
        self.requests += other.requests;
        self.blocks += other.blocks;
        self.total_ms += other.total_ms;
        self.payload = self.payload.wrapping_add(other.payload);
        self.sched.merge(&other.sched);
    }
}

/// Coalesce a **sorted, deduplicated** slice of LBNs into maximal
/// contiguous multi-block requests.
///
/// # Panics
/// Debug-asserts that the input is strictly ascending.
pub fn coalesce_sorted(lbns: &[Lbn]) -> Vec<Request> {
    let mut out = Vec::new();
    let mut iter = lbns.iter().copied();
    let Some(first) = iter.next() else {
        return out;
    };
    let mut start = first;
    let mut len = 1u64;
    let mut prev = first;
    for lbn in iter {
        debug_assert!(
            lbn > prev,
            "coalesce_sorted input must be strictly ascending"
        );
        if lbn == prev + 1 {
            len += 1;
        } else {
            out.push(Request::new(start, len));
            start = lbn;
            len = 1;
        }
        prev = lbn;
    }
    out.push(Request::new(start, len));
    out
}

/// Serve one request through `serve`, emitting a [`ServiceEvent`] with
/// the scheduler's decision context and the full before/after
/// mechanical state.
fn serve_observed(
    sim: &mut DiskSim,
    req: Request,
    out: &mut BatchTiming,
    admission_rank: usize,
    queue_len: usize,
    serve: &mut ServeFn<'_>,
    observe: &mut dyn FnMut(ServiceEvent),
) -> Result<()> {
    let seq = out.requests as usize;
    let before = sim.state();
    let (t, fault) = serve(sim, req)?;
    observe(ServiceEvent {
        seq,
        admission_rank,
        queue_len,
        kind: AccessKind::Read,
        request: req,
        before,
        after: sim.state(),
        timing: t,
        fault,
    });
    out.add(req, &t, &fault);
    Ok(())
}

/// Serve a batch on the rotating drive under `discipline` with a
/// caller-supplied serve closure (recovery hook) and a per-request
/// observer — the single dispatcher behind every batch entry point.
///
/// * [`Discipline::InOrder`] serves exactly as given; admission ranks
///   are slice indices and `queue_len` is 1.
/// * [`Discipline::AscendingLbn`] sorts a copy by LBN and serves in
///   order; admission ranks report positions in the sorted order
///   actually issued.
/// * [`Discipline::Sptf`] re-picks the cheapest pending request per
///   serve. Selection estimates against the *logical* request from the
///   current head state — the scheduler is not clairvoyant about faults
///   or remapped blocks. Batches of at least
///   [`SPTF_INCREMENTAL_MIN_WINDOW`] requests use the incremental
///   rotational-band selector, smaller batches the linear reference
///   scan; the two produce identical serve orders and timings on every
///   input (only the implementation-level [`SchedStats`] counters
///   differ), so the split is invisible to callers.
/// * [`Discipline::QueuedSptf`] admits in issue order into a bounded
///   window and serves the cheapest queued request; the incremental
///   selector is engaged when the *effective* window
///   `depth.min(requests.len())` reaches
///   [`SPTF_INCREMENTAL_MIN_WINDOW`]. Depth `0` is a
///   [`DiskError::ZeroQueueDepth`] error.
///
/// Backend-generic callers without a recovery hook should prefer
/// [`crate::device::DeviceModel::service_batch_observed`], which routes
/// here for the rotating backend.
pub fn service_batch_serving(
    sim: &mut DiskSim,
    requests: &[Request],
    discipline: Discipline,
    serve: &mut ServeFn<'_>,
    observe: &mut dyn FnMut(ServiceEvent),
) -> Result<BatchTiming> {
    match discipline {
        Discipline::InOrder => in_order_serving(sim, requests, serve, observe),
        Discipline::AscendingLbn => {
            let mut sorted: Vec<Request> = requests.to_vec();
            sorted.sort_unstable_by_key(|r| r.lbn);
            in_order_serving(sim, &sorted, serve, observe)
        }
        Discipline::Sptf => {
            if requests.len() >= SPTF_INCREMENTAL_MIN_WINDOW {
                service_batch_sptf_incremental(sim, requests, serve, observe)
            } else {
                service_batch_sptf_reference(sim, requests, serve, observe)
            }
        }
        Discipline::QueuedSptf(depth) => {
            if depth.min(requests.len()) >= SPTF_INCREMENTAL_MIN_WINDOW {
                service_batch_queued_sptf_incremental(sim, requests, depth, serve, observe)
            } else {
                service_batch_queued_sptf_reference(sim, requests, depth, serve, observe)
            }
        }
    }
}

/// The FIFO core: serve `requests` exactly in the order given.
fn in_order_serving(
    sim: &mut DiskSim,
    requests: &[Request],
    serve: &mut ServeFn<'_>,
    observe: &mut dyn FnMut(ServiceEvent),
) -> Result<BatchTiming> {
    let mut out = BatchTiming::default();
    for (rank, req) in requests.iter().enumerate() {
        serve_observed(sim, *req, &mut out, rank, 1, serve, observe)?;
    }
    Ok(out)
}

/// The linear reference SPTF scan: every pending request is re-estimated
/// per serve, `O(n²)` estimates per batch.
///
/// Retained (and exported) as the behavioral oracle for
/// [`service_batch_sptf_incremental`]; the equivalence suite pins the
/// two to identical serve orders, timings, and events.
pub fn service_batch_sptf_reference(
    sim: &mut DiskSim,
    requests: &[Request],
    serve: &mut ServeFn<'_>,
    observe: &mut dyn FnMut(ServiceEvent),
) -> Result<BatchTiming> {
    // Hoist the position-independent work (locate + skew trigonometry)
    // out of the O(n²) selection loop: one profile per request up front,
    // then only the head-state-dependent remainder per estimate, with
    // the seek memoized per (cylinder, surface) within each round.
    let mut pending: Vec<(usize, RequestProfile)> = Vec::with_capacity(requests.len());
    for (rank, req) in requests.iter().enumerate() {
        pending.push((rank, RequestProfile::new(sim.geometry(), *req)?));
    }
    let mut memo = SeekMemo::new();
    let mut out = BatchTiming::default();
    while !pending.is_empty() {
        let mut best_idx = 0;
        let mut best_est = f64::INFINITY;
        for (i, (_, profile)) in pending.iter().enumerate() {
            let est = sim.estimate_profiled(profile, &mut memo)?;
            if est < best_est {
                best_est = est;
                best_idx = i;
            }
        }
        out.sched.candidates_examined += pending.len() as u64;
        let queue_len = pending.len();
        let (rank, profile) = pending.swap_remove(best_idx);
        serve_observed(sim, profile.request(), &mut out, rank, queue_len, serve, observe)?;
        memo.begin_round();
    }
    out.sched.seek_memo_hits = memo.hits();
    out.sched.seek_memo_misses = memo.misses();
    Ok(out)
}

/// SPTF via the incremental rotational-band selector: pending requests
/// are bucketed by arrival band per cylinder group and each serve
/// evaluates only the candidates the selector's lower bounds cannot
/// exclude — `O(n · k)` estimates for small per-round candidate counts
/// `k`, instead of the reference scan's `O(n²)`.
///
/// Behaviorally identical to [`service_batch_sptf_reference`] on every
/// input, including exact positioning-time ties.
pub fn service_batch_sptf_incremental(
    sim: &mut DiskSim,
    requests: &[Request],
    serve: &mut ServeFn<'_>,
    observe: &mut dyn FnMut(ServiceEvent),
) -> Result<BatchTiming> {
    let mut selector = SptfSelector::with_capacity(requests.len());
    for (rank, req) in requests.iter().enumerate() {
        selector.admit(rank, RequestProfile::new(sim.geometry(), *req)?);
    }
    let mut memo = SeekMemo::new();
    let mut out = BatchTiming::default();
    while let Some(slot) = selector.select(sim, &mut memo)? {
        let queue_len = selector.live();
        let (rank, req) = selector.remove(slot);
        serve_observed(sim, req, &mut out, rank, queue_len, serve, observe)?;
        memo.begin_round();
    }
    out.sched.seek_memo_hits = memo.hits();
    out.sched.seek_memo_misses = memo.misses();
    let sel = selector.stats();
    out.sched.bucket_scans = sel.bucket_scans;
    out.sched.candidates_examined = sel.candidates_examined;
    out.sched.selector_repairs = sel.repairs;
    Ok(out)
}

/// The linear reference queued-SPTF scan: every queued request is
/// re-estimated per serve, `O(n · queue_depth)` estimates per batch.
///
/// Retained (and exported) as the behavioral oracle for
/// [`service_batch_queued_sptf_incremental`].
pub fn service_batch_queued_sptf_reference(
    sim: &mut DiskSim,
    requests: &[Request],
    queue_depth: usize,
    serve: &mut ServeFn<'_>,
    observe: &mut dyn FnMut(ServiceEvent),
) -> Result<BatchTiming> {
    if queue_depth == 0 {
        return Err(DiskError::ZeroQueueDepth);
    }
    let depth = queue_depth;
    let mut out = BatchTiming::default();
    // Profiles are built at admission, preserving the original error
    // order (an invalid request fails when it would enter the queue).
    let mut queue: Vec<(usize, RequestProfile)> = Vec::with_capacity(depth.min(requests.len()));
    let mut memo = SeekMemo::new();
    let mut next = 0usize;
    while next < requests.len() && queue.len() < depth {
        queue.push((next, RequestProfile::new(sim.geometry(), requests[next])?));
        next += 1;
    }
    while !queue.is_empty() {
        let mut best_idx = 0;
        let mut best_est = f64::INFINITY;
        for (i, (_, profile)) in queue.iter().enumerate() {
            let est = sim.estimate_profiled(profile, &mut memo)?;
            if est < best_est {
                best_est = est;
                best_idx = i;
            }
        }
        out.sched.candidates_examined += queue.len() as u64;
        let queue_len = queue.len();
        let (rank, profile) = queue.swap_remove(best_idx);
        serve_observed(sim, profile.request(), &mut out, rank, queue_len, serve, observe)?;
        memo.begin_round();
        if next < requests.len() {
            // The serve above vacated a slot in a full window: that is
            // one TCQ eviction under admission pressure.
            out.sched.window_evictions += 1;
            queue.push((next, RequestProfile::new(sim.geometry(), requests[next])?));
            next += 1;
        }
    }
    out.sched.seek_memo_hits = memo.hits();
    out.sched.seek_memo_misses = memo.misses();
    Ok(out)
}

/// Queued SPTF via the incremental rotational-band selector. Admission
/// order, eviction accounting, and error order (profiles are built when
/// a request would enter the queue) all mirror
/// [`service_batch_queued_sptf_reference`] exactly.
pub fn service_batch_queued_sptf_incremental(
    sim: &mut DiskSim,
    requests: &[Request],
    queue_depth: usize,
    serve: &mut ServeFn<'_>,
    observe: &mut dyn FnMut(ServiceEvent),
) -> Result<BatchTiming> {
    if queue_depth == 0 {
        return Err(DiskError::ZeroQueueDepth);
    }
    let depth = queue_depth;
    let mut out = BatchTiming::default();
    let mut selector = SptfSelector::with_capacity(depth.min(requests.len()));
    let mut memo = SeekMemo::new();
    let mut next = 0usize;
    while next < requests.len() && selector.live() < depth {
        selector.admit(next, RequestProfile::new(sim.geometry(), requests[next])?);
        next += 1;
    }
    while let Some(slot) = selector.select(sim, &mut memo)? {
        let queue_len = selector.live();
        let (rank, req) = selector.remove(slot);
        serve_observed(sim, req, &mut out, rank, queue_len, serve, observe)?;
        memo.begin_round();
        if next < requests.len() {
            // Same TCQ eviction accounting as the reference scan.
            out.sched.window_evictions += 1;
            selector.admit(next, RequestProfile::new(sim.geometry(), requests[next])?);
            next += 1;
        }
    }
    out.sched.seek_memo_hits = memo.hits();
    out.sched.seek_memo_misses = memo.misses();
    let sel = selector.stats();
    out.sched.bucket_scans = sel.bucket_scans;
    out.sched.candidates_examined = sel.candidates_examined;
    out.sched.selector_repairs = sel.repairs;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::semi_sequential_path;
    use crate::device::DeviceModel;
    use crate::geometry::{DiskBuilder, ZoneSpec};

    fn sim() -> DiskSim {
        let geom = DiskBuilder::new("sched-test")
            .rpm(10_000.0)
            .surfaces(4)
            .zones(vec![ZoneSpec {
                cylinders: 400,
                sectors_per_track: 120,
            }])
            .settle_ms(1.2)
            .settle_cylinders(8)
            .head_switch_ms(0.9)
            .command_overhead_ms(0.03)
            .build()
            .unwrap();
        DiskSim::new(geom)
    }

    #[test]
    fn coalesce_basic() {
        assert_eq!(coalesce_sorted(&[]), vec![]);
        assert_eq!(coalesce_sorted(&[5]), vec![Request::new(5, 1)]);
        assert_eq!(
            coalesce_sorted(&[1, 2, 3, 7, 8, 10]),
            vec![Request::new(1, 3), Request::new(7, 2), Request::new(10, 1)]
        );
    }

    #[test]
    fn ascending_equals_in_order_when_sorted() {
        let reqs: Vec<Request> = (0..50).map(|i| Request::single(i * 7)).collect();
        let mut a = sim();
        let mut b = sim();
        let ta = a.service_batch(&reqs, Discipline::AscendingLbn).unwrap();
        let tb = b.service_batch(&reqs, Discipline::InOrder).unwrap();
        assert!((ta.total_ms - tb.total_ms).abs() < 1e-9);
        assert_eq!(ta.requests, 50);
        assert_eq!(ta.blocks, 50);
    }

    #[test]
    fn sptf_finds_semi_sequential_path() {
        let s = sim();
        let geom = s.geometry().clone();
        let path = semi_sequential_path(&geom, 0, 1, 40);
        let reqs: Vec<Request> = path.iter().map(|&l| Request::single(l)).collect();

        // SPTF over the shuffled set should match serving the path in its
        // natural order (within small slack).
        let mut shuffled = reqs.clone();
        shuffled.reverse();
        shuffled.swap(0, 10);
        let mut s1 = sim();
        let sptf = s1.service_batch(&shuffled, Discipline::Sptf).unwrap();
        let mut s2 = sim();
        let natural = s2.service_batch(&reqs, Discipline::InOrder).unwrap();
        assert!(
            sptf.total_ms <= natural.total_ms * 1.05 + 1.0,
            "sptf {} vs natural {}",
            sptf.total_ms,
            natural.total_ms
        );
    }

    #[test]
    fn sptf_beats_fifo_on_scattered_batch() {
        let reqs: Vec<Request> = [90_000u64, 3, 50_000, 7, 120_000, 11]
            .iter()
            .map(|&l| Request::single(l))
            .collect();
        let mut s1 = sim();
        let sptf = s1.service_batch(&reqs, Discipline::Sptf).unwrap();
        let mut s2 = sim();
        let fifo = s2.service_batch(&reqs, Discipline::InOrder).unwrap();
        assert!(sptf.total_ms <= fifo.total_ms + 1e-9);
    }

    #[test]
    fn queued_sptf_depth_one_is_in_order() {
        let reqs: Vec<Request> = [5u64, 90_000, 12, 40_000]
            .iter()
            .map(|&l| Request::single(l))
            .collect();
        let mut a = sim();
        let queued = a.service_batch(&reqs, Discipline::QueuedSptf(1)).unwrap();
        let mut b = sim();
        let fifo = b.service_batch(&reqs, Discipline::InOrder).unwrap();
        assert!((queued.total_ms - fifo.total_ms).abs() < 1e-9);
    }

    #[test]
    fn queued_sptf_interpolates_between_fifo_and_sptf() {
        let reqs: Vec<Request> = (0..60u64)
            .map(|i| Request::single((i * 9173) % 150_000))
            .collect();
        let run = |depth: usize| {
            let mut s = sim();
            s.service_batch(&reqs, Discipline::QueuedSptf(depth))
                .unwrap()
                .total_ms
        };
        let d1 = run(1);
        let d8 = run(8);
        let d64 = run(64);
        // Greedy scheduling is not strictly monotone in depth, but deeper
        // queues must not lose much and should win overall.
        assert!(d8 <= d1 * 1.10, "depth 8 ({d8}) vs fifo ({d1})");
        assert!(d64 <= d8 * 1.05, "depth 64 ({d64}) vs depth 8 ({d8})");
        assert!(d64 < d1, "depth 64 ({d64}) should beat fifo ({d1})");
        // Unbounded SPTF matches depth >= n.
        let mut s = sim();
        let full = s.service_batch(&reqs, Discipline::Sptf).unwrap().total_ms;
        // Not identical (queued admits in issue order), but comparable.
        assert!(d64 <= full * 1.25 + 1.0);
    }

    #[test]
    fn queued_sptf_serves_every_request() {
        let reqs: Vec<Request> = (0..100u64).map(|i| Request::new(i * 50, 3)).collect();
        let mut s = sim();
        let t = s.service_batch(&reqs, Discipline::QueuedSptf(16)).unwrap();
        assert_eq!(t.requests, 100);
        assert_eq!(t.blocks, 300);
    }

    /// The selection loop must run entirely off precomputed profiles:
    /// for an n-request SPTF batch the only `locate` calls are the n
    /// profile builds plus the per-segment locates of actually serving
    /// each request — never the O(n²) per-round re-translation the naive
    /// estimator performs.
    #[test]
    fn sptf_selection_loop_performs_no_locates() {
        let n: u64 = 1024;
        let reqs: Vec<Request> = (0..n)
            .map(|i| Request::single((i * 48_611) % 190_000))
            .collect();
        let mut s = sim();
        let before = crate::geometry::locate_call_count();
        s.service_batch(&reqs, Discipline::Sptf).unwrap();
        let delta = crate::geometry::locate_call_count() - before;
        // n profile builds + at most ~2 per served request (track
        // crossings); the old estimator needed ~n²/2 ≈ 524k on top.
        assert!(
            delta <= 3 * n,
            "{delta} locate calls for a {n}-request SPTF batch; \
             the selection loop must not re-locate pending requests"
        );

        let mut q = sim();
        let before = crate::geometry::locate_call_count();
        q.service_batch(&reqs, Discipline::QueuedSptf(64)).unwrap();
        let delta = crate::geometry::locate_call_count() - before;
        assert!(
            delta <= 3 * n,
            "{delta} locate calls for a {n}-request queued-SPTF batch"
        );
    }

    #[test]
    fn batch_per_block_metric() {
        let mut s = sim();
        let t = s.service_batch(&[Request::new(0, 10)], Discipline::AscendingLbn).unwrap();
        assert!((t.per_block_ms() - t.total_ms / 10.0).abs() < 1e-12);
        assert_eq!(BatchTiming::default().per_block_ms(), 0.0);
    }

    mod properties {
        use super::*;
        use crate::observe::ServiceLog;
        use proptest::prelude::*;

        /// Random request batches inside the test disk's address space
        /// (total blocks = 400 cylinders * 4 surfaces * 120 spt).
        fn arb_requests() -> impl Strategy<Value = Vec<Request>> {
            proptest::collection::vec((0u64..190_000, 1u64..6), 1..40)
                .prop_map(|pairs| pairs.into_iter().map(|(l, n)| Request::new(l, n)).collect())
        }

        fn served_multiset(log: &ServiceLog) -> Vec<Request> {
            let mut served: Vec<Request> = log.events().iter().map(|e| e.request).collect();
            served.sort_unstable_by_key(|r| (r.lbn, r.nblocks));
            served
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Every scheduling policy serves exactly the requested
            /// multiset — nothing dropped, duplicated, or invented.
            #[test]
            fn served_set_equals_requested_set(reqs in arb_requests()) {
                let mut expected = reqs.clone();
                expected.sort_unstable_by_key(|r| (r.lbn, r.nblocks));
                for depth in [1usize, 4, 16] {
                    let mut s = sim();
                    let mut log = ServiceLog::new();
                    let t = s
                        .service_batch_observed(&reqs, Discipline::QueuedSptf(depth), &mut log.recorder())
                        .unwrap();
                    prop_assert_eq!(t.requests as usize, reqs.len());
                    prop_assert_eq!(served_multiset(&log), expected.clone());
                }
                let mut s = sim();
                let mut log = ServiceLog::new();
                s.service_batch_observed(&reqs, Discipline::Sptf, &mut log.recorder()).unwrap();
                prop_assert_eq!(served_multiset(&log), expected.clone());
                let mut s = sim();
                let mut log = ServiceLog::new();
                s.service_batch_observed(&reqs, Discipline::AscendingLbn, &mut log.recorder()).unwrap();
                prop_assert_eq!(served_multiset(&log), expected);
            }

            /// Queue-depth-limited SPTF cannot starve: the request served
            /// at position `seq` was among the first `seq + depth`
            /// admitted, and conversely cannot be served before it
            /// entered the queue.
            #[test]
            fn queued_sptf_never_starves_beyond_queue_depth(
                reqs in arb_requests(),
                depth in 1usize..20,
            ) {
                let mut s = sim();
                let mut log = ServiceLog::new();
                s.service_batch_observed(&reqs, Discipline::QueuedSptf(depth), &mut log.recorder())
                    .unwrap();
                for e in log.events() {
                    prop_assert!(
                        e.admission_rank < e.seq + depth,
                        "seq {} served rank {} with depth {}",
                        e.seq, e.admission_rank, depth
                    );
                    // The queue is always as full as admissions allow.
                    prop_assert_eq!(e.queue_len, depth.min(reqs.len() - e.seq));
                }
            }

            /// On pre-sorted input, the ascending policy is *identical*
            /// to in-order service: same event sequence, same timings.
            #[test]
            fn ascending_fallback_identical_on_sorted_input(reqs in arb_requests()) {
                let mut sorted = reqs;
                sorted.sort_unstable_by_key(|r| r.lbn);
                // Duplicate LBNs would make the ascending policy's own
                // (unstable) sort order of ties unspecified.
                sorted.dedup_by_key(|r| r.lbn);
                let mut a = sim();
                let mut log_a = ServiceLog::new();
                let ta = a
                    .service_batch_observed(&sorted, Discipline::AscendingLbn, &mut log_a.recorder())
                    .unwrap();
                let mut b = sim();
                let mut log_b = ServiceLog::new();
                let tb = b
                    .service_batch_observed(&sorted, Discipline::InOrder, &mut log_b.recorder())
                    .unwrap();
                prop_assert_eq!(ta, tb);
                prop_assert_eq!(log_a.events().len(), log_b.events().len());
                for (ea, eb) in log_a.events().iter().zip(log_b.events()) {
                    prop_assert_eq!(ea, eb);
                }
            }
        }
    }
}
