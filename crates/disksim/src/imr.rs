//! Interlaced magnetic recording (IMR) backend: the rotating mechanics
//! of [`DiskSim`] with interlaced track pairs and read-modify-write on
//! bottom-track updates.
//!
//! Following IMRSim (arXiv 2206.14368), tracks are interlaced in pairs:
//! **bottom** tracks (even cylinders here) are written first and partly
//! overlapped by the neighboring **top** tracks (odd cylinders). Reading
//! is unaffected — an IMR drive reads exactly like a conventional one,
//! which is why MultiMap's read-path adjacency results carry over
//! bit-for-bit. Writing a *bottom* track, however, damages the overlap
//! region of its interlaced top neighbors, so the drive must first read
//! each already-written neighboring top track and re-write it afterwards
//! — a read-modify-write (RMW) of up to two full tracks per bottom
//! track touched.
//!
//! The model composes an inner [`DiskSim`] and performs the RMW with
//! *real* simulated mechanics (full-track neighbor read + write through
//! the inner drive, advancing the same clock and head). The extra time
//! is folded into the returned [`RequestTiming::overhead_ms`] so that
//! per-event phase sums still reconcile exactly with elapsed time, and
//! transition classification (which looks at `seek_ms` only) keeps its
//! rotating-drive semantics.
//!
//! Track write state is tracked per `(cylinder, surface)`; a fresh
//! device rewrites nothing until top tracks have been written
//! ([`ImrConfig::assume_worst_case`] flips this to an aged, fully
//! written device).

use std::collections::BTreeSet;

use crate::device::DeviceModel;
use crate::error::Result;
use crate::geometry::{DiskGeometry, Lbn};
use crate::observe::{ServiceEvent, Transition};
use crate::scheduler::{plain_serve, service_batch_serving, BatchTiming, Discipline};
use crate::sim::{AccessKind, DiskSim, Request, RequestTiming};
use crate::stats::AccessStats;

/// Configuration of the IMR model.
///
/// `#[non_exhaustive]` with a builder ([`ImrConfig::builder`]), matching
/// the crate-wide options convention.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct ImrConfig {
    /// Perform neighbor read-modify-write on bottom-track writes. With
    /// this off the model degenerates to the plain rotating drive — the
    /// ablation baseline.
    pub rmw_enabled: bool,
    /// Treat every top track as already written (an aged, fully
    /// populated device): every bottom-track write pays the full RMW.
    /// Off by default — a fresh device only rewrites tracks it has
    /// actually written.
    pub assume_worst_case: bool,
}

impl Default for ImrConfig {
    fn default() -> Self {
        ImrConfig {
            rmw_enabled: true,
            assume_worst_case: false,
        }
    }
}

impl ImrConfig {
    /// Start building a configuration from the defaults.
    pub fn builder() -> ImrConfigBuilder {
        ImrConfigBuilder {
            cfg: ImrConfig::default(),
        }
    }
}

/// Builder for [`ImrConfig`].
#[derive(Clone, Copy, Debug)]
pub struct ImrConfigBuilder {
    cfg: ImrConfig,
}

impl ImrConfigBuilder {
    /// Enable or disable neighbor read-modify-write.
    pub fn rmw_enabled(mut self, on: bool) -> Self {
        self.cfg.rmw_enabled = on;
        self
    }

    /// Model an aged device whose top tracks are all written.
    pub fn assume_worst_case(mut self, on: bool) -> Self {
        self.cfg.assume_worst_case = on;
        self
    }

    /// Finish, yielding the configuration.
    pub fn build(self) -> ImrConfig {
        self.cfg
    }
}

/// The IMR device model: rotating mechanics plus interlaced-track
/// write amplification. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct ImrModel {
    inner: DiskSim,
    cfg: ImrConfig,
    /// Tracks written since reset, keyed `(cylinder, surface)`.
    written: BTreeSet<(u64, u32)>,
    bottom_writes: u64,
    top_writes: u64,
    neighbor_rewrites: u64,
    rmw_ms: f64,
}

impl ImrModel {
    /// New device on `geom` with the given configuration.
    pub fn new(geom: DiskGeometry, cfg: ImrConfig) -> Self {
        ImrModel {
            inner: DiskSim::new(geom),
            cfg,
            written: BTreeSet::new(),
            bottom_writes: 0,
            top_writes: 0,
            neighbor_rewrites: 0,
            rmw_ms: 0.0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ImrConfig {
        &self.cfg
    }

    /// Whether a cylinder holds bottom (overlapped) tracks.
    pub fn is_bottom_cylinder(cylinder: u64) -> bool {
        cylinder.is_multiple_of(2)
    }

    /// Neighbor-track rewrites performed since the last stats reset.
    pub fn neighbor_rewrites(&self) -> u64 {
        self.neighbor_rewrites
    }

    /// Total simulated time spent on neighbor RMW since the last stats
    /// reset.
    pub fn rmw_ms(&self) -> f64 {
        self.rmw_ms
    }

    /// The `(cylinder, surface)` tracks a request touches, in LBN walk
    /// order (ascending, no duplicates — a request is contiguous).
    fn touched_tracks(&self, req: Request) -> Result<Vec<(u64, u32, Lbn, Lbn)>> {
        let geom = self.inner.geometry();
        let mut out = Vec::new();
        let mut cur = req.lbn;
        let end = req.end();
        while cur < end {
            let (first, last) = geom.track_boundaries(cur)?;
            let loc = geom.locate(first)?;
            out.push((loc.cylinder, loc.surface, first, last));
            cur = last + 1;
        }
        Ok(out)
    }

    /// Read-modify-write one already-written top track through the
    /// inner drive's real mechanics. Returns the elapsed time.
    fn rewrite_track(&mut self, cylinder: u64, surface: u32) -> Result<f64> {
        let geom = self.inner.geometry();
        let first = geom.lbn_of(cylinder, surface, 0)?;
        let (tfirst, tlast) = geom.track_boundaries(first)?;
        let track = Request::new(tfirst, tlast - tfirst + 1);
        let r = self.inner.service(track)?;
        let w = self.inner.service_write(track)?;
        Ok(r.total_ms() + w.total_ms())
    }
}

impl DeviceModel for ImrModel {
    fn name(&self) -> &'static str {
        "imr"
    }

    fn capacity_blocks(&self) -> u64 {
        self.inner.geometry().total_blocks()
    }

    fn now_ms(&self) -> f64 {
        self.inner.state().time_ms
    }

    fn service_kind(&mut self, req: Request, kind: AccessKind) -> Result<RequestTiming> {
        match kind {
            // Reads are untouched rotating mechanics: bit-identical to
            // the "disk" backend.
            AccessKind::Read => self.inner.service(req),
            AccessKind::Write => {
                let touched = self.touched_tracks(req)?;
                let t = self.inner.service_write(req)?;
                let touched_keys: BTreeSet<(u64, u32)> =
                    touched.iter().map(|&(c, s, _, _)| (c, s)).collect();
                let total_cylinders = self.inner.geometry().total_cylinders();
                let mut extra = 0.0;
                for &(cyl, surface, _, _) in &touched {
                    if Self::is_bottom_cylinder(cyl) {
                        self.bottom_writes += 1;
                        if !self.cfg.rmw_enabled {
                            continue;
                        }
                        // The interlaced top neighbors: cylinders cyl±1
                        // (odd by construction), same surface.
                        let mut neighbors = Vec::new();
                        if cyl > 0 {
                            neighbors.push(cyl - 1);
                        }
                        if cyl + 1 < total_cylinders {
                            neighbors.push(cyl + 1);
                        }
                        for ncyl in neighbors {
                            let key = (ncyl, surface);
                            // A neighbor being overwritten by this very
                            // request needs no preservation.
                            if touched_keys.contains(&key) {
                                continue;
                            }
                            if self.cfg.assume_worst_case || self.written.contains(&key) {
                                extra += self.rewrite_track(ncyl, surface)?;
                                self.neighbor_rewrites += 1;
                            }
                        }
                    } else {
                        self.top_writes += 1;
                    }
                }
                self.written.extend(touched_keys);
                self.rmw_ms += extra;
                Ok(RequestTiming {
                    overhead_ms: t.overhead_ms + extra,
                    ..t
                })
            }
        }
    }

    fn estimate(&self, req: Request) -> Result<f64> {
        self.inner.estimate(req)
    }

    fn service_batch_observed(
        &mut self,
        requests: &[Request],
        discipline: Discipline,
        observe: &mut dyn FnMut(ServiceEvent),
    ) -> Result<BatchTiming> {
        // Read batches ride the inner drive's scheduler unchanged: the
        // IMR read path is the rotating drive's read path.
        service_batch_serving(&mut self.inner, requests, discipline, &mut plain_serve, observe)
    }

    fn classify(&self, event: &ServiceEvent) -> Transition {
        event.transition(self.inner.geometry())
    }

    fn idle(&mut self, ms: f64) {
        self.inner.idle(ms);
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.written.clear();
        self.bottom_writes = 0;
        self.top_writes = 0;
        self.neighbor_rewrites = 0;
        self.rmw_ms = 0.0;
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
        self.bottom_writes = 0;
        self.top_writes = 0;
        self.neighbor_rewrites = 0;
        self.rmw_ms = 0.0;
    }

    fn stats(&self) -> AccessStats {
        *self.inner.stats()
    }

    fn geometry(&self) -> Option<&DiskGeometry> {
        Some(self.inner.geometry())
    }

    fn counters(&self) -> Vec<(String, u64)> {
        vec![
            ("imr.bottom_track_writes".to_string(), self.bottom_writes),
            ("imr.top_track_writes".to_string(), self.top_writes),
            ("imr.neighbor_rewrites".to_string(), self.neighbor_rewrites),
            ("imr.tracks_written".to_string(), self.written.len() as u64),
            ("imr.rmw_time_us".to_string(), (self.rmw_ms * 1000.0) as u64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    fn imr() -> ImrModel {
        ImrModel::new(profiles::small(), ImrConfig::default())
    }

    #[test]
    fn reads_are_bit_identical_to_disk() {
        let geom = profiles::small();
        let reqs: Vec<Request> = (0..80u64)
            .map(|i| Request::new((i * 6151) % (geom.total_blocks() - 4), 1 + i % 4))
            .collect();
        for d in [Discipline::AscendingLbn, Discipline::Sptf, Discipline::QueuedSptf(16)] {
            let mut disk = DiskSim::new(geom.clone());
            let mut log_d = crate::observe::ServiceLog::new();
            let td = disk
                .service_batch_observed(&reqs, d, &mut log_d.recorder())
                .unwrap();
            let mut imr = imr();
            let mut log_i = crate::observe::ServiceLog::new();
            let ti = imr
                .service_batch_observed(&reqs, d, &mut log_i.recorder())
                .unwrap();
            assert_eq!(td, ti);
            assert_eq!(td.total_ms.to_bits(), ti.total_ms.to_bits());
            assert_eq!(log_d, log_i);
        }
    }

    #[test]
    fn fresh_device_pays_no_rmw() {
        let mut dev = imr();
        // First-ever write to a bottom track: neighbors unwritten.
        let t = dev.service_write(Request::new(0, 4)).unwrap();
        let mut plain = DiskSim::new(profiles::small());
        let p = plain.service_write(Request::new(0, 4)).unwrap();
        assert_eq!(t.total_ms().to_bits(), p.total_ms().to_bits());
        assert_eq!(dev.neighbor_rewrites(), 0);
    }

    #[test]
    fn bottom_write_rewrites_written_top_neighbors() {
        let mut dev = imr();
        let geom = dev.geometry().unwrap().clone();
        // Write the top track on cylinder 1, surface 0…
        let top = geom.lbn_of(1, 0, 0).unwrap();
        dev.service_write(Request::new(top, 2)).unwrap();
        assert_eq!(dev.neighbor_rewrites(), 0);
        // …then write its bottom neighbor on cylinder 0 or 2: RMW fires.
        let bottom = geom.lbn_of(2, 0, 0).unwrap();
        let plain_t = {
            let mut plain = DiskSim::new(geom.clone());
            // Put the plain drive in a comparable position first.
            plain.service_write(Request::new(top, 2)).unwrap();
            plain.service_write(Request::new(bottom, 2)).unwrap().total_ms()
        };
        let t = dev.service_write(Request::new(bottom, 2)).unwrap();
        assert_eq!(dev.neighbor_rewrites(), 1);
        assert!(dev.rmw_ms() > 0.0);
        assert!(
            t.total_ms() > plain_t,
            "RMW write {} must exceed the plain write {}",
            t.total_ms(),
            plain_t
        );
    }

    #[test]
    fn top_writes_never_trigger_rmw() {
        let mut dev = imr();
        let geom = dev.geometry().unwrap().clone();
        for cyl in [1u64, 3, 5] {
            let lbn = geom.lbn_of(cyl, 0, 0).unwrap();
            dev.service_write(Request::new(lbn, 4)).unwrap();
        }
        assert_eq!(dev.neighbor_rewrites(), 0);
        let counters = dev.counters();
        let top = counters.iter().find(|(k, _)| k == "imr.top_track_writes").unwrap().1;
        assert_eq!(top, 3);
    }

    #[test]
    fn worst_case_device_always_pays() {
        let mut dev = ImrModel::new(
            profiles::small(),
            ImrConfig::builder().assume_worst_case(true).build(),
        );
        let geom = dev.geometry().unwrap().clone();
        let bottom = geom.lbn_of(2, 0, 0).unwrap();
        dev.service_write(Request::new(bottom, 1)).unwrap();
        // Both interlaced neighbors (cylinders 1 and 3) rewritten.
        assert_eq!(dev.neighbor_rewrites(), 2);
    }

    #[test]
    fn rmw_disabled_is_plain_disk() {
        let geom = profiles::small();
        let mut dev = ImrModel::new(geom.clone(), ImrConfig::builder().rmw_enabled(false).build());
        let mut plain = DiskSim::new(geom.clone());
        // Age both devices identically, then write bottom tracks.
        for cyl in [1u64, 3] {
            let lbn = geom.lbn_of(cyl, 0, 0).unwrap();
            dev.service_write(Request::new(lbn, 2)).unwrap();
            plain.service_write(Request::new(lbn, 2)).unwrap();
        }
        let bottom = geom.lbn_of(2, 0, 0).unwrap();
        let t = dev.service_write(Request::new(bottom, 2)).unwrap();
        let p = plain.service_write(Request::new(bottom, 2)).unwrap();
        assert_eq!(t.total_ms().to_bits(), p.total_ms().to_bits());
        assert_eq!(dev.neighbor_rewrites(), 0);
    }

    #[test]
    fn counters_reconcile_with_inner_stats() {
        let mut dev = imr();
        let geom = dev.geometry().unwrap().clone();
        // Age a top track, then hit its bottom neighbor twice.
        let top = geom.lbn_of(1, 0, 0).unwrap();
        dev.service_write(Request::new(top, 1)).unwrap();
        let bottom = geom.lbn_of(0, 0, 0).unwrap();
        dev.service_write(Request::new(bottom, 1)).unwrap();
        dev.service_write(Request::new(bottom, 1)).unwrap();
        // Inner stats count user requests plus one read + one write per
        // neighbor rewrite: exact reconciliation.
        let rewrites = dev.neighbor_rewrites();
        assert_eq!(rewrites, 2);
        assert_eq!(DeviceModel::stats(&dev).requests, 3 + 2 * rewrites);
    }
}
