//! Disk geometry: zones, cylinders, surfaces, tracks and the mapping
//! between logical block numbers (LBNs) and physical locations.
//!
//! The model follows the conventions of DiskSim-style simulators and the
//! adjacency-model paper (Schlosser et al., FAST'05):
//!
//! * The disk has `surfaces` recording surfaces; the set of tracks at one
//!   radial position (one per surface) is a *cylinder*.
//! * Cylinders are grouped into *zones*; every track in a zone holds the
//!   same number of sectors (`sectors_per_track`, the paper's `T`).
//! * LBNs are laid out zone-major, cylinder-major, surface-major,
//!   sector-minor: LBN 0 is sector 0 of surface 0 of cylinder 0.
//! * Consecutive tracks are *skewed* so that a sequential transfer that
//!   crosses a track (or cylinder) boundary finds the next sector just
//!   arriving under the head after the head switch (or settle) completes.

use serde::{Deserialize, Serialize};

use crate::error::{DiskError, Result};

/// Logical block number. One LBN addresses one 512-byte sector.
pub type Lbn = u64;

thread_local! {
    /// Per-thread tally of [`DiskGeometry::locate`] calls, used by tests
    /// to prove hot paths stay off the geometry-resolution routine.
    static LOCATE_CALLS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Number of [`DiskGeometry::locate`] calls made *by the current thread*
/// since it started. A cheap instrumentation counter: tests snapshot it
/// around a scheduling run to assert that request selection performs no
/// geometry resolution (the profiles precomputed per batch must carry
/// all of it).
pub fn locate_call_count() -> u64 {
    LOCATE_CALLS.with(|c| c.get())
}

/// Bytes per sector/LBN (the paper assumes 512-byte blocks).
pub const SECTOR_BYTES: u32 = 512;

/// Floating-point guard (in revolutions) against an exact rotational hit
/// being pushed to a full-revolution wait by representation noise.
///
/// Shared between [`DiskGeometry::rotational_wait_from_angle`] (which
/// clamps any wait above `1 - ROTATION_WRAP_GUARD` revolutions to zero)
/// and the incremental SPTF selector's rotational-band scan, which
/// starts each circular bucket walk at the first item the clamp treats
/// as non-wrapped so the per-item waits it observes are monotone
/// non-decreasing — the property its early-exit bound relies on. The
/// scan classifies items by replaying the clamp's own float expressions
/// (`angle - phase`, `+ 1.0`, `1.0 - ROTATION_WRAP_GUARD`), never a
/// separately rounded threshold, so the two can never disagree on a
/// boundary angle.
/// Public so the staticcheck selector-bound prover can replay the exact
/// clamp expressions when it machine-checks that classification.
pub const ROTATION_WRAP_GUARD: f64 = 1e-9;

/// A declarative zone description used when building a [`DiskGeometry`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoneSpec {
    /// Number of cylinders in this zone.
    pub cylinders: u32,
    /// Sectors (LBNs) per track in this zone — the paper's track length `T`.
    pub sectors_per_track: u32,
}

/// A fully resolved zone with its absolute cylinder/track/LBN offsets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Zone {
    /// Index of this zone on the disk (0 = outermost).
    pub index: usize,
    /// First cylinder (global index) belonging to this zone.
    pub first_cylinder: u64,
    /// Number of cylinders in the zone.
    pub cylinders: u64,
    /// Sectors per track (`T`).
    pub sectors_per_track: u32,
    /// First global track index of the zone.
    pub first_track: u64,
    /// First LBN of the zone.
    pub first_lbn: Lbn,
    /// Total number of LBNs in the zone.
    pub blocks: u64,
}

impl Zone {
    /// Number of tracks in the zone.
    #[inline]
    pub fn tracks(&self, surfaces: u32) -> u64 {
        self.cylinders * surfaces as u64
    }

    /// One past the last LBN of the zone.
    #[inline]
    pub fn end_lbn(&self) -> Lbn {
        self.first_lbn + self.blocks
    }
}

/// Physical location of an LBN.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Location {
    /// Zone index.
    pub zone: usize,
    /// Global cylinder index.
    pub cylinder: u64,
    /// Surface (head) index within the cylinder: `0..surfaces`.
    pub surface: u32,
    /// Global track index (`cylinder * surfaces + surface`).
    pub track: u64,
    /// Sector index within the track: `0..sectors_per_track`.
    pub sector: u32,
    /// Sectors per track of the containing zone (`T`).
    pub spt: u32,
}

/// Complete mechanical and layout description of one disk drive.
///
/// Build one with [`DiskBuilder`] or use a canned profile from
/// [`crate::profiles`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DiskGeometry {
    /// Human-readable model name.
    pub name: String,
    /// Spindle speed in revolutions per minute.
    pub rpm: f64,
    /// Number of recording surfaces (tracks per cylinder, the paper's `R`).
    pub surfaces: u32,
    /// Resolved zone table, outermost zone first.
    zones: Vec<Zone>,
    /// Head settle time in milliseconds — the cost of any seek of up to
    /// [`Self::settle_cylinders`] cylinders.
    pub settle_ms: f64,
    /// The paper's `C`: largest cylinder distance whose seek cost is
    /// dominated by settle time.
    pub settle_cylinders: u32,
    /// Head (surface) switch time within a cylinder, in milliseconds.
    pub head_switch_ms: f64,
    /// Fixed per-request command/controller overhead in milliseconds.
    pub command_overhead_ms: f64,
    /// Upper bound of the (deterministic pseudo-random) settle-time
    /// jitter: real settle varies with thermal state and vibration, which
    /// is exactly why adjacency offsets need a safety margin. Jitter is a
    /// pure function of the arrival time and target track, so replaying a
    /// workload reproduces identical timings. Default 0 (ideal settle).
    pub settle_jitter_ms: f64,
    /// Extra settle time writes pay on every repositioning: the head must
    /// be centred more precisely to write than to read, so drives settle
    /// longer before enabling the write gate.
    pub write_settle_extra_ms: f64,
    /// Safety margin added when computing adjacent-block offsets:
    /// firmware must assume a conservative (worst-case) settle time, or a
    /// marginally slow settle would cost a full revolution. Larger slack
    /// trades a little semi-sequential latency for robustness of the
    /// zero-rotational-latency guarantee.
    pub adjacency_slack_ms: f64,
    /// Catalogue average seek time (used to calibrate the seek curve).
    pub avg_seek_ms: f64,
    /// Catalogue full-stroke seek time (used to calibrate the seek curve).
    pub max_seek_ms: f64,
    /// Advertised adjacency depth `D` (number of adjacent blocks per LBN).
    /// At most `surfaces * settle_cylinders`.
    pub adjacency_limit: u32,
    /// Calibrated seek-curve coefficient for the sqrt term.
    seek_a: f64,
    /// Calibrated seek-curve coefficient for the linear term.
    seek_b: f64,
    /// Total cylinders on the disk.
    total_cylinders: u64,
    /// Total LBNs on the disk.
    total_blocks: u64,
}

impl DiskGeometry {
    /// Total number of LBNs on the disk.
    #[inline]
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Total number of cylinders on the disk.
    #[inline]
    pub fn total_cylinders(&self) -> u64 {
        self.total_cylinders
    }

    /// Formatted capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.total_blocks * SECTOR_BYTES as u64
    }

    /// Duration of one platter revolution in milliseconds.
    #[inline]
    pub fn revolution_ms(&self) -> f64 {
        60_000.0 / self.rpm
    }

    /// The resolved zone table (outermost first).
    #[inline]
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Time to transfer one sector in the given zone, in milliseconds.
    #[inline]
    pub fn sector_time_ms(&self, zone: &Zone) -> f64 {
        self.revolution_ms() / zone.sectors_per_track as f64
    }

    /// Sustained media bandwidth of a zone in bytes per millisecond.
    #[inline]
    pub fn streaming_bandwidth(&self, zone: &Zone) -> f64 {
        zone.sectors_per_track as f64 * SECTOR_BYTES as f64 / self.revolution_ms()
    }

    /// The zone containing `lbn`.
    pub fn zone_of_lbn(&self, lbn: Lbn) -> Result<&Zone> {
        if lbn >= self.total_blocks {
            return Err(DiskError::LbnOutOfRange {
                lbn,
                total: self.total_blocks,
            });
        }
        let idx = self
            .zones
            .partition_point(|z| z.end_lbn() <= lbn)
            .min(self.zones.len() - 1);
        Ok(&self.zones[idx])
    }

    /// The zone containing the given global cylinder index.
    pub fn zone_of_cylinder(&self, cylinder: u64) -> Result<&Zone> {
        if cylinder >= self.total_cylinders {
            return Err(DiskError::CylinderOutOfRange {
                cylinder,
                total: self.total_cylinders,
            });
        }
        let idx = self
            .zones
            .partition_point(|z| z.first_cylinder + z.cylinders <= cylinder)
            .min(self.zones.len() - 1);
        Ok(&self.zones[idx])
    }

    /// Resolve an LBN to its physical location.
    pub fn locate(&self, lbn: Lbn) -> Result<Location> {
        LOCATE_CALLS.with(|c| c.set(c.get() + 1));
        let zone = self.zone_of_lbn(lbn)?;
        let rel = lbn - zone.first_lbn;
        let spt = zone.sectors_per_track as u64;
        let blocks_per_cylinder = spt * self.surfaces as u64;
        let cyl_in_zone = rel / blocks_per_cylinder;
        let rem = rel % blocks_per_cylinder;
        let surface = (rem / spt) as u32;
        let sector = (rem % spt) as u32;
        let cylinder = zone.first_cylinder + cyl_in_zone;
        Ok(Location {
            zone: zone.index,
            cylinder,
            surface,
            track: cylinder * self.surfaces as u64 + surface as u64,
            sector,
            spt: zone.sectors_per_track,
        })
    }

    /// Inverse of [`Self::locate`].
    pub fn lbn_of(&self, cylinder: u64, surface: u32, sector: u32) -> Result<Lbn> {
        let zone = self.zone_of_cylinder(cylinder)?;
        if surface >= self.surfaces {
            return Err(DiskError::SurfaceOutOfRange {
                surface,
                total: self.surfaces,
            });
        }
        if sector >= zone.sectors_per_track {
            return Err(DiskError::SectorOutOfRange {
                sector,
                spt: zone.sectors_per_track,
            });
        }
        let spt = zone.sectors_per_track as u64;
        let rel = (cylinder - zone.first_cylinder) * spt * self.surfaces as u64
            + surface as u64 * spt
            + sector as u64;
        Ok(zone.first_lbn + rel)
    }

    /// First and last LBN (inclusive) of the track containing `lbn`.
    ///
    /// This is the `GET_TRACK_BOUNDARIES` primitive of the adjacency model.
    pub fn track_boundaries(&self, lbn: Lbn) -> Result<(Lbn, Lbn)> {
        let loc = self.locate(lbn)?;
        let first = lbn - loc.sector as u64;
        Ok((first, first + loc.spt as u64 - 1))
    }

    /// Track skew in sectors between consecutive surfaces of one cylinder:
    /// the angular distance the platter covers during a head switch,
    /// rounded up to a sector boundary (plus one sector of slack).
    pub fn track_skew_sectors(&self, zone: &Zone) -> u32 {
        let sectors = (self.head_switch_ms / self.sector_time_ms(zone)).ceil() as u32 + 1;
        sectors % zone.sectors_per_track
    }

    /// Cylinder skew in sectors between the last track of a cylinder and
    /// the first track of the next: covers a one-cylinder seek (settle).
    pub fn cylinder_skew_sectors(&self, zone: &Zone) -> u32 {
        let sectors = (self.settle_ms / self.sector_time_ms(zone)).ceil() as u32 + 1;
        sectors % zone.sectors_per_track
    }

    /// Angular offset, in sectors, of sector 0 of the given track relative
    /// to the zone's reference angle. Tracks accumulate track skew within a
    /// cylinder and cylinder skew across cylinders.
    pub fn track_offset_sectors(&self, zone: &Zone, cylinder: u64, surface: u32) -> u32 {
        debug_assert!(cylinder >= zone.first_cylinder);
        let spt = zone.sectors_per_track as u64;
        let cyl_in_zone = cylinder - zone.first_cylinder;
        let track_skew = self.track_skew_sectors(zone) as u64;
        let cyl_skew = self.cylinder_skew_sectors(zone) as u64;
        // Crossing one full cylinder accumulates (surfaces-1) track skews
        // plus one cylinder skew.
        let per_cylinder = (self.surfaces as u64 - 1) * track_skew + cyl_skew;
        let off = cyl_in_zone
            .wrapping_mul(per_cylinder)
            .wrapping_add(surface as u64 * track_skew);
        (off % spt) as u32
    }

    /// Angle (in revolutions, `[0,1)`) at which the *start* of the given
    /// sector passes under the head.
    pub fn sector_start_angle(&self, loc: &Location) -> f64 {
        let zone = &self.zones[loc.zone];
        let off = self.track_offset_sectors(zone, loc.cylinder, loc.surface);
        let abs = (off + loc.sector) % loc.spt;
        abs as f64 / loc.spt as f64
    }

    /// Rotational phase of the platter at absolute time `t_ms`
    /// (in revolutions, `[0,1)`).
    #[inline]
    pub fn phase_at(&self, t_ms: f64) -> f64 {
        let rev = self.revolution_ms();
        (t_ms / rev).fract()
    }

    /// Time to wait, starting at `t_ms`, until the start of sector `loc`
    /// arrives under the head (assumes the head is already on the track).
    pub fn rotational_wait_ms(&self, loc: &Location, t_ms: f64) -> f64 {
        self.rotational_wait_from_angle(self.sector_start_angle(loc), t_ms)
    }

    /// [`Self::rotational_wait_ms`] with the target sector's start angle
    /// already resolved — the phase-dependent half of the computation.
    /// Schedulers that precompute [`Self::sector_start_angle`] per request
    /// call this in their selection loops; both paths share this function
    /// so cached and uncached estimates are bit-identical.
    pub fn rotational_wait_from_angle(&self, target: f64, t_ms: f64) -> f64 {
        let phase = self.phase_at(t_ms);
        let mut delta = target - phase;
        if delta < 0.0 {
            delta += 1.0;
        }
        // Guard against floating-point noise pushing an exact hit to a
        // full-revolution wait.
        if delta > 1.0 - ROTATION_WRAP_GUARD {
            delta = 0.0;
        }
        delta * self.revolution_ms()
    }

    /// Seek time in milliseconds for a move of `dcyl` cylinders.
    ///
    /// The curve has the shape of Figure 1(a) of the paper: a settle-time
    /// plateau for distances up to `settle_cylinders`, then a calibrated
    /// `a*sqrt(d) + b*d` tail through the catalogue average- and
    /// full-stroke seek times.
    pub fn seek_ms(&self, dcyl: u64) -> f64 {
        if dcyl == 0 {
            0.0
        } else if dcyl <= self.settle_cylinders as u64 {
            self.settle_ms
        } else {
            let d = (dcyl - self.settle_cylinders as u64) as f64;
            self.settle_ms + self.seek_a * d.sqrt() + self.seek_b * d
        }
    }

    /// Lower bound on the seek cost of *any* cylinder distance `>= dcyl`.
    ///
    /// [`DiskBuilder::build`] clamps both calibrated tail coefficients to
    /// be non-negative, so the whole seek curve is weakly monotone in the
    /// distance (sqrt, multiplication by a non-negative constant and
    /// addition are all monotone under IEEE-754 rounding) and the suffix
    /// minimum is simply `seek_ms(dcyl)` itself. The incremental SPTF
    /// selector uses this as the pruning bound of its outward cylinder
    /// walk; the bound being the *same float* the estimator later charges
    /// is what keeps the pruned search bit-identical to the full scan.
    pub fn seek_floor_ms(&self, dcyl: u64) -> f64 {
        debug_assert!(
            self.seek_a >= 0.0 && self.seek_b >= 0.0,
            "builder guarantees a monotone seek curve"
        );
        self.seek_ms(dcyl)
    }

    /// Positioning time from one track to another: pure head switch within
    /// a cylinder, otherwise the seek curve (which includes settle).
    pub fn positioning_ms(
        &self,
        from_cylinder: u64,
        from_surface: u32,
        to_cylinder: u64,
        to_surface: u32,
    ) -> f64 {
        let dcyl = from_cylinder.abs_diff(to_cylinder);
        if dcyl == 0 {
            if from_surface == to_surface {
                0.0
            } else {
                self.head_switch_ms
            }
        } else {
            let seek = self.seek_ms(dcyl);
            if from_surface == to_surface {
                seek
            } else {
                seek.max(self.head_switch_ms)
            }
        }
    }
}

impl std::fmt::Display for DiskGeometry {
    /// A data-sheet-style summary.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} — {:.1} GB, {:.0} RPM, {} cylinders x {} surfaces",
            self.name,
            self.capacity_bytes() as f64 / 1e9,
            self.rpm,
            self.total_cylinders(),
            self.surfaces
        )?;
        writeln!(
            f,
            "  settle {:.2} ms over C={} cylinders (D = {} adjacent blocks), head switch {:.2} ms",
            self.settle_ms, self.settle_cylinders, self.adjacency_limit, self.head_switch_ms
        )?;
        writeln!(
            f,
            "  seek avg/max {:.1}/{:.1} ms, overhead {:.0} us, adjacency slack {:.2} ms",
            self.avg_seek_ms,
            self.max_seek_ms,
            self.command_overhead_ms * 1000.0,
            self.adjacency_slack_ms
        )?;
        write!(
            f,
            "  {} zones, T = {}..{} sectors ({:.1}..{:.1} MB/s)",
            self.zones.len(),
            self.zones.first().map(|z| z.sectors_per_track).unwrap_or(0),
            self.zones.last().map(|z| z.sectors_per_track).unwrap_or(0),
            self.zones
                .first()
                .map(|z| self.streaming_bandwidth(z) * 1000.0 / 1e6)
                .unwrap_or(0.0),
            self.zones
                .last()
                .map(|z| self.streaming_bandwidth(z) * 1000.0 / 1e6)
                .unwrap_or(0.0),
        )
    }
}

/// Builder for [`DiskGeometry`]. All parameters have sensible defaults for
/// a small test disk; real profiles live in [`crate::profiles`].
#[derive(Clone, Debug)]
pub struct DiskBuilder {
    name: String,
    rpm: f64,
    surfaces: u32,
    zones: Vec<ZoneSpec>,
    settle_ms: f64,
    settle_cylinders: u32,
    head_switch_ms: f64,
    command_overhead_ms: f64,
    settle_jitter_ms: f64,
    write_settle_extra_ms: f64,
    adjacency_slack_ms: f64,
    avg_seek_ms: f64,
    max_seek_ms: f64,
    adjacency_limit: Option<u32>,
}

impl Default for DiskBuilder {
    fn default() -> Self {
        Self::new("generic-disk")
    }
}

impl DiskBuilder {
    /// Start building a disk with the given model name.
    pub fn new(name: impl Into<String>) -> Self {
        DiskBuilder {
            name: name.into(),
            rpm: 10_000.0,
            surfaces: 4,
            zones: vec![ZoneSpec {
                cylinders: 1000,
                sectors_per_track: 600,
            }],
            settle_ms: 1.2,
            settle_cylinders: 32,
            head_switch_ms: 1.0,
            command_overhead_ms: 0.025,
            settle_jitter_ms: 0.0,
            write_settle_extra_ms: 0.4,
            adjacency_slack_ms: 0.3,
            avg_seek_ms: 5.0,
            max_seek_ms: 10.0,
            adjacency_limit: None,
        }
    }

    /// Spindle speed in RPM.
    pub fn rpm(mut self, rpm: f64) -> Self {
        self.rpm = rpm;
        self
    }

    /// Number of recording surfaces (`R`).
    pub fn surfaces(mut self, surfaces: u32) -> Self {
        self.surfaces = surfaces;
        self
    }

    /// Replace the zone table (outermost zone first).
    pub fn zones(mut self, zones: Vec<ZoneSpec>) -> Self {
        self.zones = zones;
        self
    }

    /// Head settle time in ms.
    pub fn settle_ms(mut self, v: f64) -> Self {
        self.settle_ms = v;
        self
    }

    /// Settle-dominated seek distance `C` in cylinders.
    pub fn settle_cylinders(mut self, v: u32) -> Self {
        self.settle_cylinders = v;
        self
    }

    /// Head switch time in ms.
    pub fn head_switch_ms(mut self, v: f64) -> Self {
        self.head_switch_ms = v;
        self
    }

    /// Per-request command overhead in ms.
    pub fn command_overhead_ms(mut self, v: f64) -> Self {
        self.command_overhead_ms = v;
        self
    }

    /// Adjacency safety margin in ms (see
    /// [`DiskGeometry::adjacency_slack_ms`]).
    pub fn adjacency_slack_ms(mut self, v: f64) -> Self {
        self.adjacency_slack_ms = v;
        self
    }

    /// Extra settle writes pay on repositioning (see
    /// [`DiskGeometry::write_settle_extra_ms`]).
    pub fn write_settle_extra_ms(mut self, v: f64) -> Self {
        self.write_settle_extra_ms = v;
        self
    }

    /// Settle-time jitter bound (see [`DiskGeometry::settle_jitter_ms`]).
    pub fn settle_jitter_ms(mut self, v: f64) -> Self {
        self.settle_jitter_ms = v;
        self
    }

    /// Catalogue average seek time in ms (calibrates the seek curve).
    pub fn avg_seek_ms(mut self, v: f64) -> Self {
        self.avg_seek_ms = v;
        self
    }

    /// Catalogue full-stroke seek time in ms (calibrates the seek curve).
    pub fn max_seek_ms(mut self, v: f64) -> Self {
        self.max_seek_ms = v;
        self
    }

    /// Advertised adjacency depth `D`. Defaults to
    /// `surfaces * settle_cylinders`.
    pub fn adjacency_limit(mut self, d: u32) -> Self {
        self.adjacency_limit = Some(d);
        self
    }

    /// Validate and resolve the geometry.
    pub fn build(self) -> Result<DiskGeometry> {
        if self.zones.is_empty() {
            return Err(DiskError::InvalidGeometry("zone table is empty"));
        }
        if self.surfaces == 0 {
            return Err(DiskError::InvalidGeometry("surfaces must be positive"));
        }
        if self.rpm <= 0.0 {
            return Err(DiskError::InvalidGeometry("rpm must be positive"));
        }
        if self.settle_ms <= 0.0
            || self.head_switch_ms < 0.0
            || self.command_overhead_ms < 0.0
            || self.adjacency_slack_ms < 0.0
            || self.write_settle_extra_ms < 0.0
            || self.settle_jitter_ms < 0.0
        {
            return Err(DiskError::InvalidGeometry("negative timing parameter"));
        }
        if self.settle_cylinders == 0 {
            return Err(DiskError::InvalidGeometry(
                "settle_cylinders must be positive",
            ));
        }
        let mut zones = Vec::with_capacity(self.zones.len());
        let mut first_cylinder = 0u64;
        let mut first_track = 0u64;
        let mut first_lbn = 0u64;
        for (index, spec) in self.zones.iter().enumerate() {
            if spec.cylinders == 0 || spec.sectors_per_track == 0 {
                return Err(DiskError::InvalidGeometry("empty zone"));
            }
            let blocks =
                spec.cylinders as u64 * self.surfaces as u64 * spec.sectors_per_track as u64;
            zones.push(Zone {
                index,
                first_cylinder,
                cylinders: spec.cylinders as u64,
                sectors_per_track: spec.sectors_per_track,
                first_track,
                first_lbn,
                blocks,
            });
            first_cylinder += spec.cylinders as u64;
            first_track += spec.cylinders as u64 * self.surfaces as u64;
            first_lbn += blocks;
        }
        let total_cylinders = first_cylinder;
        let total_blocks = first_lbn;

        // Calibrate seek tail a*sqrt(d) + b*d through the catalogue points
        // (avg seek at 1/3 stroke, max seek at full stroke).
        let c = self.settle_cylinders as u64;
        let d_avg = (total_cylinders / 3).saturating_sub(c).max(1) as f64;
        let d_max = (total_cylinders - 1).saturating_sub(c).max(2) as f64;
        let y_avg = (self.avg_seek_ms - self.settle_ms).max(0.1);
        let y_max = (self.max_seek_ms - self.settle_ms).max(y_avg * 1.5);
        // Solve [sqrt(d_avg) d_avg; sqrt(d_max) d_max] [a b]^T = [y_avg y_max]^T
        let (s1, l1, s2, l2) = (d_avg.sqrt(), d_avg, d_max.sqrt(), d_max);
        let det = s1 * l2 - s2 * l1;
        let (mut seek_a, mut seek_b) = if det.abs() < 1e-9 {
            (0.0, y_max / l2)
        } else {
            (
                (y_avg * l2 - y_max * l1) / det,
                (s1 * y_max - s2 * y_avg) / det,
            )
        };
        if seek_a < 0.0 {
            // Fall back to a purely linear tail through the full-stroke point.
            seek_a = 0.0;
            seek_b = y_max / l2;
        }
        if seek_b < 0.0 {
            seek_a = y_max / s2;
            seek_b = 0.0;
        }

        let d_cap = self.surfaces.saturating_mul(self.settle_cylinders);
        let adjacency_limit = match self.adjacency_limit {
            Some(d) => {
                if d == 0 || d > d_cap {
                    return Err(DiskError::InvalidGeometry(
                        "adjacency_limit must be in 1..=surfaces*settle_cylinders",
                    ));
                }
                d
            }
            None => d_cap,
        };

        Ok(DiskGeometry {
            name: self.name,
            rpm: self.rpm,
            surfaces: self.surfaces,
            zones,
            settle_ms: self.settle_ms,
            settle_cylinders: self.settle_cylinders,
            head_switch_ms: self.head_switch_ms,
            command_overhead_ms: self.command_overhead_ms,
            settle_jitter_ms: self.settle_jitter_ms,
            write_settle_extra_ms: self.write_settle_extra_ms,
            adjacency_slack_ms: self.adjacency_slack_ms,
            avg_seek_ms: self.avg_seek_ms,
            max_seek_ms: self.max_seek_ms,
            adjacency_limit,
            seek_a,
            seek_b,
            total_cylinders,
            total_blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> DiskGeometry {
        DiskBuilder::new("toy")
            .rpm(6_000.0)
            .surfaces(3)
            .zones(vec![
                ZoneSpec {
                    cylinders: 10,
                    sectors_per_track: 5,
                },
                ZoneSpec {
                    cylinders: 10,
                    sectors_per_track: 4,
                },
            ])
            .settle_ms(1.0)
            .settle_cylinders(3)
            .head_switch_ms(0.8)
            .avg_seek_ms(3.0)
            .max_seek_ms(6.0)
            .build()
            .unwrap()
    }

    #[test]
    fn totals() {
        let g = toy();
        assert_eq!(g.total_cylinders(), 20);
        assert_eq!(g.total_blocks(), 10 * 3 * 5 + 10 * 3 * 4);
        assert_eq!(g.capacity_bytes(), g.total_blocks() * 512);
        assert_eq!(g.zones().len(), 2);
        assert_eq!(g.zones()[1].first_lbn, 150);
        assert_eq!(g.zones()[1].first_cylinder, 10);
        assert_eq!(g.zones()[1].first_track, 30);
    }

    #[test]
    fn locate_roundtrip_exhaustive() {
        let g = toy();
        for lbn in 0..g.total_blocks() {
            let loc = g.locate(lbn).unwrap();
            let back = g.lbn_of(loc.cylinder, loc.surface, loc.sector).unwrap();
            assert_eq!(back, lbn, "roundtrip failed for {lbn}");
            assert_eq!(loc.track, loc.cylinder * 3 + loc.surface as u64);
        }
    }

    #[test]
    fn locate_first_blocks() {
        let g = toy();
        let l0 = g.locate(0).unwrap();
        assert_eq!((l0.cylinder, l0.surface, l0.sector), (0, 0, 0));
        let l5 = g.locate(5).unwrap();
        assert_eq!((l5.cylinder, l5.surface, l5.sector), (0, 1, 0));
        let l15 = g.locate(15).unwrap();
        assert_eq!((l15.cylinder, l15.surface, l15.sector), (1, 0, 0));
        // First block of second zone.
        let lz = g.locate(150).unwrap();
        assert_eq!((lz.cylinder, lz.surface, lz.sector), (10, 0, 0));
        assert_eq!(lz.spt, 4);
    }

    #[test]
    fn lbn_out_of_range() {
        let g = toy();
        assert!(g.locate(g.total_blocks()).is_err());
        assert!(g.lbn_of(20, 0, 0).is_err());
        assert!(g.lbn_of(0, 3, 0).is_err());
        assert!(g.lbn_of(0, 0, 5).is_err());
    }

    #[test]
    fn track_boundaries_cover_track() {
        let g = toy();
        let (first, last) = g.track_boundaries(7).unwrap();
        assert_eq!((first, last), (5, 9));
        let (first, last) = g.track_boundaries(152).unwrap();
        assert_eq!((first, last), (150, 153));
    }

    #[test]
    fn seek_curve_shape() {
        let g = toy();
        assert_eq!(g.seek_ms(0), 0.0);
        // Plateau.
        assert_eq!(g.seek_ms(1), g.settle_ms);
        assert_eq!(g.seek_ms(3), g.settle_ms);
        // Monotone beyond the plateau.
        let mut prev = g.seek_ms(3);
        for d in 4..20 {
            let s = g.seek_ms(d);
            assert!(s >= prev, "seek must be monotone at {d}");
            prev = s;
        }
        // Hits roughly the calibrated full-stroke value.
        let full = g.seek_ms(19);
        assert!((full - 6.0).abs() < 1.0, "full stroke {full}");
    }

    /// The incremental SPTF selector prunes its outward cylinder walk
    /// with [`DiskGeometry::seek_floor_ms`], which is only sound if the
    /// seek curve is weakly monotone in the distance — pin that across
    /// every geometry the repo ships, over the full stroke.
    #[test]
    fn seek_curve_is_monotone_over_full_stroke() {
        let geoms = [
            toy(),
            crate::profiles::cheetah_36es(),
            crate::profiles::atlas_10k_iii(),
            crate::profiles::small(),
        ];
        for g in geoms {
            let mut prev = g.seek_ms(0);
            for d in 1..g.total_cylinders() {
                let s = g.seek_ms(d);
                assert!(
                    s >= prev,
                    "{}: seek_ms({d}) = {s} < seek_ms({}) = {prev}",
                    g.name,
                    d - 1
                );
                assert_eq!(s.to_bits(), g.seek_floor_ms(d).to_bits());
                prev = s;
            }
        }
    }

    #[test]
    fn rotational_wait_within_revolution() {
        let g = toy();
        let rev = g.revolution_ms();
        for lbn in 0..g.total_blocks() {
            let loc = g.locate(lbn).unwrap();
            for t in [0.0, 0.3, 7.9, 123.456] {
                let w = g.rotational_wait_ms(&loc, t);
                assert!((0.0..rev).contains(&w), "wait {w} outside [0,{rev})");
            }
        }
    }

    #[test]
    fn sequential_sectors_are_contiguous_in_angle() {
        let g = toy();
        // Consecutive sectors on a track start exactly one sector apart.
        let a = g.locate(0).unwrap();
        let b = g.locate(1).unwrap();
        let da = g.sector_start_angle(&a);
        let db = g.sector_start_angle(&b);
        let diff = (db - da + 1.0) % 1.0;
        assert!((diff - 1.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn builder_rejects_bad_geometry() {
        assert!(DiskBuilder::new("x").zones(vec![]).build().is_err());
        assert!(DiskBuilder::new("x").surfaces(0).build().is_err());
        assert!(DiskBuilder::new("x").rpm(0.0).build().is_err());
        assert!(DiskBuilder::new("x")
            .adjacency_limit(10_000)
            .build()
            .is_err());
        assert!(DiskBuilder::new("x").settle_cylinders(0).build().is_err());
    }

    #[test]
    fn display_spec_sheet() {
        let g = toy();
        let sheet = g.to_string();
        assert!(sheet.contains("toy"));
        assert!(sheet.contains("D = 9"));
        assert!(sheet.contains("2 zones"));
    }

    #[test]
    fn positioning_components() {
        let g = toy();
        assert_eq!(g.positioning_ms(0, 0, 0, 0), 0.0);
        assert_eq!(g.positioning_ms(0, 0, 0, 1), g.head_switch_ms);
        assert_eq!(g.positioning_ms(0, 0, 1, 0), g.settle_ms);
        assert!(g.positioning_ms(0, 0, 15, 2) >= g.settle_ms);
    }
}
