//! Aggregated access statistics.

use serde::{Deserialize, Serialize};

use crate::sim::RequestTiming;

/// Running totals over every request serviced by a [`crate::DiskSim`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AccessStats {
    /// Number of requests serviced.
    pub requests: u64,
    /// Number of blocks transferred.
    pub blocks: u64,
    /// Total command overhead.
    pub overhead_ms: f64,
    /// Total positioning (seek + settle + head switch) time.
    pub seek_ms: f64,
    /// Total rotational latency.
    pub rotation_ms: f64,
    /// Total media transfer time.
    pub transfer_ms: f64,
    /// Total busy time (sum of the four components).
    pub total_ms: f64,
    /// Largest single-request service time observed.
    pub max_request_ms: f64,
}

impl AccessStats {
    /// Record one serviced request.
    pub fn record(&mut self, timing: &RequestTiming, nblocks: u64) {
        self.requests += 1;
        self.blocks += nblocks;
        self.overhead_ms += timing.overhead_ms;
        self.seek_ms += timing.seek_ms;
        self.rotation_ms += timing.rotation_ms;
        self.transfer_ms += timing.transfer_ms;
        let total = timing.total_ms();
        self.total_ms += total;
        if total > self.max_request_ms {
            self.max_request_ms = total;
        }
    }

    /// Merge another statistics block into this one.
    pub fn merge(&mut self, other: &AccessStats) {
        self.requests += other.requests;
        self.blocks += other.blocks;
        self.overhead_ms += other.overhead_ms;
        self.seek_ms += other.seek_ms;
        self.rotation_ms += other.rotation_ms;
        self.transfer_ms += other.transfer_ms;
        self.total_ms += other.total_ms;
        self.max_request_ms = self.max_request_ms.max(other.max_request_ms);
    }

    /// Mean service time per request (0 when empty).
    pub fn mean_request_ms(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_ms / self.requests as f64
        }
    }

    /// Mean I/O time per block transferred (the paper's "I/O time per
    /// cell" metric; 0 when empty).
    pub fn per_block_ms(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.total_ms / self.blocks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(oh: f64, seek: f64, rot: f64, xfer: f64) -> RequestTiming {
        RequestTiming {
            overhead_ms: oh,
            seek_ms: seek,
            rotation_ms: rot,
            transfer_ms: xfer,
        }
    }

    #[test]
    fn record_and_means() {
        let mut s = AccessStats::default();
        s.record(&timing(0.1, 1.0, 2.0, 0.4), 4);
        s.record(&timing(0.1, 0.0, 0.0, 0.4), 4);
        assert_eq!(s.requests, 2);
        assert_eq!(s.blocks, 8);
        assert!((s.total_ms - 4.0).abs() < 1e-12);
        assert!((s.mean_request_ms() - 2.0).abs() < 1e-12);
        assert!((s.per_block_ms() - 0.5).abs() < 1e-12);
        assert!((s.max_request_ms - 3.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = AccessStats::default();
        a.record(&timing(0.1, 1.0, 0.0, 0.2), 1);
        let mut b = AccessStats::default();
        b.record(&timing(0.2, 0.0, 3.0, 0.2), 2);
        a.merge(&b);
        assert_eq!(a.requests, 2);
        assert_eq!(a.blocks, 3);
        assert!((a.total_ms - 4.7).abs() < 1e-12);
        assert!((a.max_request_ms - 3.4).abs() < 1e-12);
    }

    #[test]
    fn empty_means_are_zero() {
        let s = AccessStats::default();
        assert_eq!(s.mean_request_ms(), 0.0);
        assert_eq!(s.per_block_ms(), 0.0);
    }
}
