//! Request service-time engine.
//!
//! [`DiskSim`] tracks the mechanical state of one disk (time, head
//! position) and computes the service time of each request from first
//! principles: per-command overhead, then seek/settle, then rotational
//! wait until the first target sector arrives under the head, then media
//! transfer — splitting multi-track transfers into per-track segments.
//!
//! One deliberate simplification mirrors real drives' read-ahead buffers:
//! a request that starts *exactly* where the previous request ended is a
//! prefetch hit and costs only command overhead plus media transfer. This
//! is what lets a stream of single-block sequential requests (the paper's
//! `Dim0` beam queries) run at full streaming bandwidth instead of paying
//! a rotational miss per command.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::error::{DiskError, Result};
use crate::fault::{FaultCounts, FaultDecision, FaultInjector, FaultPlan};
use crate::geometry::{DiskGeometry, Lbn, Location};
use crate::stats::AccessStats;

/// Mechanical state of the disk between requests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeadState {
    /// Absolute simulated time in milliseconds. The platter's rotational
    /// phase is derived from this.
    pub time_ms: f64,
    /// Cylinder the head currently sits on.
    pub cylinder: u64,
    /// Active surface.
    pub surface: u32,
    /// One past the last LBN transferred, if the previous request allows
    /// read-ahead continuation (used for the prefetch fast path).
    pub last_end_lbn: Option<Lbn>,
}

impl HeadState {
    /// Initial state: time zero, head parked on cylinder 0 / surface 0.
    pub fn initial() -> Self {
        HeadState {
            time_ms: 0.0,
            cylinder: 0,
            surface: 0,
            last_end_lbn: None,
        }
    }
}

impl Default for HeadState {
    fn default() -> Self {
        Self::initial()
    }
}

/// Deterministic settle jitter in `[0, settle_jitter_ms)`: a hash of the
/// arrival time and target track, so identical workloads replay
/// identically while distinct seeks see varied settles.
fn settle_jitter(geom: &DiskGeometry, t_ms: f64, track: u64) -> f64 {
    // staticcheck: allow(float-cmp) — exact sentinel: profiles store literal 0.0 to disable jitter.
    if geom.settle_jitter_ms == 0.0 {
        return 0.0;
    }
    let mut x = t_ms.to_bits() ^ track.wrapping_mul(0x9E3779B97F4A7C15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51AFD7ED558CCD);
    x ^= x >> 33;
    geom.settle_jitter_ms * (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Access direction of a request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Read (the default everywhere in the query path).
    #[default]
    Read,
    /// Write: every repositioning pays the drive's extra write settle.
    Write,
}

/// A read request for `nblocks` consecutive LBNs starting at `lbn`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Request {
    /// First LBN of the request.
    pub lbn: Lbn,
    /// Number of blocks to transfer (must be positive).
    pub nblocks: u64,
}

impl Request {
    /// A single-block request.
    #[inline]
    pub fn single(lbn: Lbn) -> Self {
        Request { lbn, nblocks: 1 }
    }

    /// A multi-block request.
    #[inline]
    pub fn new(lbn: Lbn, nblocks: u64) -> Self {
        Request { lbn, nblocks }
    }

    /// One past the last LBN covered.
    #[inline]
    pub fn end(&self) -> Lbn {
        self.lbn + self.nblocks
    }
}

/// Per-request service time, broken down by mechanical component.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RequestTiming {
    /// Command/controller overhead.
    pub overhead_ms: f64,
    /// Seek + settle + head-switch time (all positioning).
    pub seek_ms: f64,
    /// Rotational latency.
    pub rotation_ms: f64,
    /// Media transfer time.
    pub transfer_ms: f64,
}

impl RequestTiming {
    /// Total service time of the request.
    #[inline]
    pub fn total_ms(&self) -> f64 {
        self.overhead_ms + self.seek_ms + self.rotation_ms + self.transfer_ms
    }
}

/// Precomputed position-independent facts about one request, built once
/// per batch so SPTF selection loops never re-run [`DiskGeometry::locate`]
/// or the trigonometric skew arithmetic per round.
///
/// The profile caches everything about the request that does not depend
/// on the head state: its first block's physical [`Location`], the start
/// angle of that sector, the media-transfer time when the request fits in
/// its first track segment, and the transfer sum of the sequential
/// prefetch fast path. What remains per estimate — seek from the current
/// cylinder and the rotational phase at arrival — is recomputed cheaply
/// (and the seek is memoized per round by [`SeekMemo`]).
#[derive(Clone, Debug)]
pub struct RequestProfile {
    req: Request,
    /// Physical location of the request's first block.
    loc: Location,
    /// [`DiskGeometry::sector_start_angle`] of the first block.
    start_angle: f64,
    /// Media transfer time when the request fits inside its first track
    /// segment (`sector + nblocks <= spt`); `None` forces the exact
    /// multi-track simulation fallback.
    single_track_xfer_ms: Option<f64>,
    /// Exact media-transfer time of the first track segment — the whole
    /// transfer for a single-track request. Bit-identical to the
    /// estimator's first-segment term, and a provable lower bound on the
    /// estimate's total transfer component, which is what lets the
    /// incremental selector keep multi-track requests inside its pruned
    /// band index.
    first_segment_xfer_ms: f64,
    /// Transfer sum of the sequential-continuation (prefetch) fast path.
    seq_transfer_ms: f64,
}

impl RequestProfile {
    /// Build the profile, validating the request exactly as
    /// [`DiskSim::estimate`] would (same errors, in the same order).
    pub fn new(geom: &DiskGeometry, req: Request) -> Result<Self> {
        if req.nblocks == 0 {
            return Err(DiskError::EmptyRequest);
        }
        if req.end() > geom.total_blocks() {
            return Err(DiskError::RequestPastEnd {
                lbn: req.lbn,
                nblocks: req.nblocks,
                total: geom.total_blocks(),
            });
        }
        let loc = geom.locate(req.lbn)?;
        let start_angle = geom.sector_start_angle(&loc);
        // Same `take` and float product as `simulate_inner`'s first
        // segment iteration, so the cached value is bit-identical.
        let take = req.nblocks.min((loc.spt - loc.sector) as u64);
        let first_segment_xfer_ms = take as f64 * geom.sector_time_ms(&geom.zones()[loc.zone]);
        let single_track_xfer_ms = if loc.sector as u64 + req.nblocks <= loc.spt as u64 {
            Some(first_segment_xfer_ms)
        } else {
            None
        };
        // Accumulate the prefetch-path transfer in the same order as
        // `simulate_inner` so the cached total is bit-identical.
        let mut seq_transfer_ms = 0.0;
        let mut cur = req.lbn;
        let mut remaining = req.nblocks;
        while remaining > 0 {
            let zone = geom.zone_of_lbn(cur)?;
            let take = remaining.min(zone.end_lbn() - cur);
            seq_transfer_ms += take as f64 * geom.sector_time_ms(zone);
            cur += take;
            remaining -= take;
        }
        Ok(RequestProfile {
            req,
            loc,
            start_angle,
            single_track_xfer_ms,
            first_segment_xfer_ms,
            seq_transfer_ms,
        })
    }

    /// The profiled request.
    #[inline]
    pub fn request(&self) -> Request {
        self.req
    }

    /// Physical location of the request's first block.
    #[inline]
    pub(crate) fn loc(&self) -> &Location {
        &self.loc
    }

    /// Start angle of the first block, in revolutions.
    ///
    /// Public so the staticcheck selector-bound prover can reconstruct
    /// the selector's rotational-band bounds from the same cached float.
    #[inline]
    pub fn start_angle(&self) -> f64 {
        self.start_angle
    }

    /// Single-track transfer time, `None` for multi-track requests.
    /// (The estimator reads the field directly; tests and the
    /// selector-bound prover assert through this accessor.)
    #[inline]
    pub fn single_track_xfer_ms(&self) -> Option<f64> {
        self.single_track_xfer_ms
    }

    /// Exact transfer time of the first track segment (the whole
    /// transfer for a single-track request) — a lower bound on the
    /// estimate's transfer component, bit-identical to the estimator's
    /// own first-segment term.
    ///
    /// Public so the staticcheck selector-bound prover can verify the
    /// lower-bound claim against the reference estimator.
    #[inline]
    pub fn first_segment_xfer_ms(&self) -> f64 {
        self.first_segment_xfer_ms
    }

    /// Physical track of the request's first block, as
    /// `(cylinder, surface)` — the selector's bucket key.
    #[inline]
    pub fn track(&self) -> (u64, u32) {
        (self.loc.cylinder, self.loc.surface)
    }
}

/// Per-round memo of [`DiskGeometry::positioning_ms`] keyed by target
/// `(cylinder, surface)`. Positioning depends only on the head's current
/// track and the target track, so within one scheduling round (head state
/// frozen) every pending request on the same track shares one entry.
///
/// Call [`SeekMemo::begin_round`] after every head movement.
#[derive(Debug, Default)]
pub struct SeekMemo {
    // staticcheck: allow(det-unordered-collection) — keyed-only memo: accessed solely via entry() by exact (cylinder, surface) key and cleared per round; never iterated, so RandomState order cannot reach any result.
    map: HashMap<(u64, u32), f64>,
    hits: u64,
    misses: u64,
}

impl SeekMemo {
    /// Empty memo.
    pub fn new() -> Self {
        SeekMemo::default()
    }

    /// Invalidate the memo: the head moved, all seeks changed. Hit/miss
    /// counters accumulate across rounds (they describe the batch).
    pub fn begin_round(&mut self) {
        self.map.clear();
    }

    /// Positioning lookups answered from the memo, cumulative across
    /// rounds since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Positioning lookups that ran the seek curve, cumulative across
    /// rounds since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub(crate) fn positioning(
        &mut self,
        geom: &DiskGeometry,
        from_cylinder: u64,
        from_surface: u32,
        to_cylinder: u64,
        to_surface: u32,
    ) -> f64 {
        match self.map.entry((to_cylinder, to_surface)) {
            Entry::Occupied(e) => {
                self.hits += 1;
                *e.get()
            }
            Entry::Vacant(v) => {
                self.misses += 1;
                *v.insert(geom.positioning_ms(
                    from_cylinder,
                    from_surface,
                    to_cylinder,
                    to_surface,
                ))
            }
        }
    }
}

/// Simulator for a single disk drive.
#[derive(Clone, Debug)]
pub struct DiskSim {
    geom: DiskGeometry,
    state: HeadState,
    stats: AccessStats,
    fault: Option<FaultInjector>,
}

impl DiskSim {
    /// Create a simulator in the initial head state.
    pub fn new(geom: DiskGeometry) -> Self {
        DiskSim {
            geom,
            state: HeadState::initial(),
            stats: AccessStats::default(),
            fault: None,
        }
    }

    /// Install a fault plan (replacing any previous one). An empty plan
    /// uninstalls the injector entirely, so the simulator takes exactly
    /// the same code path — and produces bit-identical timing — as a
    /// simulator that never had a plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = if plan.is_empty() {
            None
        } else {
            Some(FaultInjector::new(plan))
        };
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|i| i.plan())
    }

    /// Counts of faults injected so far (all zero without a plan).
    pub fn fault_counts(&self) -> FaultCounts {
        self.fault
            .as_ref()
            .map(|i| i.counts())
            .unwrap_or_default()
    }

    /// The disk's geometry.
    #[inline]
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geom
    }

    /// Current mechanical state.
    #[inline]
    pub fn state(&self) -> HeadState {
        self.state
    }

    /// Accumulated access statistics.
    #[inline]
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Reset time, head position, statistics and the fault schedule
    /// (the installed plan, if any, rewinds to command zero).
    pub fn reset(&mut self) {
        self.state = HeadState::initial();
        self.stats = AccessStats::default();
        if let Some(inj) = self.fault.as_mut() {
            inj.reset();
        }
    }

    /// Clear only the statistics, keeping the mechanical state (useful to
    /// exclude warm-up requests from a measurement).
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }

    /// Service a read request, advancing time and head position.
    ///
    /// With a fault plan installed the command may instead fail with
    /// [`DiskError::TransientTimeout`] (clock advanced by the timeout)
    /// or [`DiskError::MediaError`] (readable prefix and the failed
    /// probe of the bad sector both paid for); recovery is the storage
    /// manager's job.
    pub fn service(&mut self, req: Request) -> Result<RequestTiming> {
        self.service_kind(req, AccessKind::Read)
    }

    /// Service a write request: like a read, but every repositioning
    /// pays [`DiskGeometry::write_settle_extra_ms`], and a write never
    /// continues a read-ahead stream from a *different* access kind.
    pub fn service_write(&mut self, req: Request) -> Result<RequestTiming> {
        self.service_kind(req, AccessKind::Write)
    }

    fn service_kind(&mut self, req: Request, kind: AccessKind) -> Result<RequestTiming> {
        let Some(inj) = self.fault.as_mut() else {
            let timing = Self::simulate_kind(&self.geom, &mut self.state, req, kind)?;
            self.stats.record(&timing, req.nblocks);
            return Ok(timing);
        };
        // Validate before drawing, so malformed requests fail identically
        // with and without a plan and never consume a command index.
        if req.nblocks == 0 {
            return Err(DiskError::EmptyRequest);
        }
        if req.end() > self.geom.total_blocks() {
            return Err(DiskError::RequestPastEnd {
                lbn: req.lbn,
                nblocks: req.nblocks,
                total: self.geom.total_blocks(),
            });
        }
        match inj.admit(req.lbn, req.nblocks) {
            FaultDecision::Proceed { slow_extra_ms } => {
                let mut timing = Self::simulate_kind(&self.geom, &mut self.state, req, kind)?;
                if slow_extra_ms > 0.0 {
                    // A slow read shows up as extra rotational delay; the
                    // read-ahead stream survives (the data still arrived).
                    timing.rotation_ms += slow_extra_ms;
                    self.state.time_ms += slow_extra_ms;
                }
                self.stats.record(&timing, req.nblocks);
                Ok(timing)
            }
            FaultDecision::Transient { timeout_ms } => {
                // The command aborts after burning the timeout; the
                // drive's read-ahead context is lost with it.
                self.state.time_ms += timeout_ms;
                self.state.last_end_lbn = None;
                Err(DiskError::TransientTimeout { lbn: req.lbn })
            }
            FaultDecision::Media { lbn } => {
                // The readable prefix transfers normally, then the head
                // pays full mechanics probing the bad sector before the
                // drive gives up on it.
                if lbn > req.lbn {
                    let prefix = Request::new(req.lbn, lbn - req.lbn);
                    let t = Self::simulate_kind(&self.geom, &mut self.state, prefix, kind)?;
                    self.stats.record(&t, prefix.nblocks);
                }
                let _ = Self::simulate_kind(&self.geom, &mut self.state, Request::single(lbn), kind)?;
                self.state.last_end_lbn = None;
                Err(DiskError::MediaError { lbn })
            }
        }
    }

    /// Estimated total service time of `req` from the current state,
    /// without committing it.
    ///
    /// Estimates use the *nominal* settle time: a scheduler cannot
    /// predict the settle jitter an actual seek will experience, so a
    /// drive that schedules around its own future jitter would be
    /// unrealistically clever.
    pub fn estimate(&self, req: Request) -> Result<f64> {
        let mut state = self.state;
        Ok(Self::simulate_inner(&self.geom, &mut state, req, AccessKind::Read, false)?.total_ms())
    }

    /// [`Self::estimate`] from a precomputed [`RequestProfile`], with the
    /// seek component memoized in `memo` (valid for the current head
    /// state; callers clear it with [`SeekMemo::begin_round`] after every
    /// service).
    ///
    /// Bit-identical to [`Self::estimate`]: the single-track fast path
    /// replays `simulate_inner`'s float operations in the same order on
    /// cached inputs, and multi-track requests fall back to the exact
    /// simulation. This is what lets SPTF schedulers swap it in without
    /// perturbing a single scheduling decision (golden traces included).
    pub fn estimate_profiled(&self, profile: &RequestProfile, memo: &mut SeekMemo) -> Result<f64> {
        let overhead_ms = self.geom.command_overhead_ms;
        // Prefetch fast path: exact sequential continuation.
        if self.state.last_end_lbn == Some(profile.req.lbn) {
            let timing = RequestTiming {
                overhead_ms,
                seek_ms: 0.0,
                rotation_ms: 0.0,
                transfer_ms: profile.seq_transfer_ms,
            };
            return Ok(timing.total_ms());
        }
        let Some(transfer_ms) = profile.single_track_xfer_ms else {
            // Multi-track request: the exact per-segment walk.
            return self.estimate(profile.req);
        };
        let pos = memo.positioning(
            &self.geom,
            self.state.cylinder,
            self.state.surface,
            profile.loc.cylinder,
            profile.loc.surface,
        );
        let mut t = self.state.time_ms + overhead_ms;
        t += pos;
        let wait = self.geom.rotational_wait_from_angle(profile.start_angle, t);
        let timing = RequestTiming {
            overhead_ms,
            seek_ms: pos,
            rotation_ms: wait,
            transfer_ms,
        };
        Ok(timing.total_ms())
    }

    /// Advance the simulated clock without moving the head (models idle
    /// time between queries, which randomises the rotational phase).
    ///
    /// Negative or NaN durations are a caller bug: they are clamped to
    /// zero (time never runs backwards) and trip a debug assertion.
    pub fn idle(&mut self, ms: f64) {
        debug_assert!(
            ms.is_finite() && ms >= 0.0,
            "idle duration must be finite and non-negative, got {ms}"
        );
        if ms > 0.0 {
            self.state.time_ms += ms;
        }
        self.state.last_end_lbn = None;
    }

    /// Core service-time computation. Pure function of geometry and state;
    /// exposed so schedulers can evaluate candidate orderings on copies of
    /// the state.
    pub fn simulate(
        geom: &DiskGeometry,
        state: &mut HeadState,
        req: Request,
    ) -> Result<RequestTiming> {
        Self::simulate_kind(geom, state, req, AccessKind::Read)
    }

    /// [`Self::simulate`] with an explicit access kind.
    pub fn simulate_kind(
        geom: &DiskGeometry,
        state: &mut HeadState,
        req: Request,
        kind: AccessKind,
    ) -> Result<RequestTiming> {
        Self::simulate_inner(geom, state, req, kind, true)
    }

    /// Core engine; `actual` selects whether settle jitter is drawn
    /// (service) or replaced by the nominal settle (estimates).
    fn simulate_inner(
        geom: &DiskGeometry,
        state: &mut HeadState,
        req: Request,
        kind: AccessKind,
        actual: bool,
    ) -> Result<RequestTiming> {
        let write_extra = match kind {
            AccessKind::Read => 0.0,
            AccessKind::Write => geom.write_settle_extra_ms,
        };
        if req.nblocks == 0 {
            return Err(DiskError::EmptyRequest);
        }
        if req.end() > geom.total_blocks() {
            return Err(DiskError::RequestPastEnd {
                lbn: req.lbn,
                nblocks: req.nblocks,
                total: geom.total_blocks(),
            });
        }

        let mut timing = RequestTiming {
            overhead_ms: geom.command_overhead_ms,
            ..RequestTiming::default()
        };

        // Prefetch fast path: exact sequential continuation.
        if state.last_end_lbn == Some(req.lbn) {
            let mut cur = req.lbn;
            let mut remaining = req.nblocks;
            while remaining > 0 {
                let zone = geom.zone_of_lbn(cur)?;
                let take = remaining.min(zone.end_lbn() - cur);
                timing.transfer_ms += take as f64 * geom.sector_time_ms(zone);
                cur += take;
                remaining -= take;
            }
            let end_loc = geom.locate(req.end() - 1)?;
            state.time_ms += timing.total_ms();
            state.cylinder = end_loc.cylinder;
            state.surface = end_loc.surface;
            state.last_end_lbn = Some(req.end());
            return Ok(timing);
        }

        let mut t = state.time_ms + timing.overhead_ms;
        let mut cur = req.lbn;
        let mut remaining = req.nblocks;
        let (mut cyl, mut surf) = (state.cylinder, state.surface);
        while remaining > 0 {
            let loc = geom.locate(cur)?;
            let mut pos = geom.positioning_ms(cyl, surf, loc.cylinder, loc.surface);
            if pos > 0.0 {
                pos += write_extra;
                if actual {
                    pos += settle_jitter(geom, t, loc.track);
                }
            }
            timing.seek_ms += pos;
            t += pos;
            let wait = geom.rotational_wait_ms(&loc, t);
            timing.rotation_ms += wait;
            t += wait;
            let take = remaining.min((loc.spt - loc.sector) as u64);
            let zone = &geom.zones()[loc.zone];
            let xfer = take as f64 * geom.sector_time_ms(zone);
            timing.transfer_ms += xfer;
            t += xfer;
            cyl = loc.cylinder;
            surf = loc.surface;
            cur += take;
            remaining -= take;
        }
        state.time_ms = t;
        state.cylinder = cyl;
        state.surface = surf;
        state.last_end_lbn = Some(req.end());
        Ok(timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::{adjacent_lbn, semi_sequential_path};
    use crate::geometry::{DiskBuilder, ZoneSpec};

    fn disk() -> DiskSim {
        let geom = DiskBuilder::new("sim-test")
            .rpm(10_000.0)
            .surfaces(4)
            .zones(vec![
                ZoneSpec {
                    cylinders: 200,
                    sectors_per_track: 120,
                },
                ZoneSpec {
                    cylinders: 200,
                    sectors_per_track: 100,
                },
            ])
            .settle_ms(1.2)
            .settle_cylinders(8)
            .head_switch_ms(0.9)
            .command_overhead_ms(0.03)
            .avg_seek_ms(4.5)
            .max_seek_ms(9.0)
            .build()
            .unwrap();
        DiskSim::new(geom)
    }

    #[test]
    fn empty_and_overlong_requests_rejected() {
        let mut sim = disk();
        assert_eq!(
            sim.service(Request::new(0, 0)),
            Err(DiskError::EmptyRequest)
        );
        let total = sim.geometry().total_blocks();
        assert!(sim.service(Request::new(total - 1, 2)).is_err());
        assert!(sim.service(Request::new(total, 1)).is_err());
    }

    #[test]
    fn sequential_single_block_requests_stream() {
        let mut sim = disk();
        // Warm up: position on the first block.
        sim.service(Request::single(0)).unwrap();
        let st = sim.geometry().sector_time_ms(&sim.geometry().zones()[0]);
        let oh = sim.geometry().command_overhead_ms;
        for lbn in 1..500u64 {
            let t = sim.service(Request::single(lbn)).unwrap();
            assert!(
                (t.total_ms() - (oh + st)).abs() < 1e-9,
                "lbn {lbn}: {} != {}",
                t.total_ms(),
                oh + st
            );
            assert_eq!(t.seek_ms, 0.0);
            assert_eq!(t.rotation_ms, 0.0);
        }
    }

    #[test]
    fn one_big_sequential_request_is_mostly_transfer() {
        let mut sim = disk();
        let n = 120 * 4 * 3; // three full cylinders
        let t = sim.service(Request::new(0, n)).unwrap();
        let st = sim.geometry().sector_time_ms(&sim.geometry().zones()[0]);
        assert!((t.transfer_ms - n as f64 * st).abs() < 1e-6);
        // Positioning across tracks is head switches and 1-cylinder seeks.
        assert!(t.seek_ms > 0.0);
        // Skew should keep rotational waits below one sector per switch…
        let switches = (n / 120 - 1) as f64;
        assert!(
            t.rotation_ms <= switches * 2.0 * st + sim.geometry().revolution_ms(),
            "rotation {} too large",
            t.rotation_ms
        );
    }

    #[test]
    fn semi_sequential_steps_cost_settle_plus_slack() {
        let mut sim = disk();
        let geom = sim.geometry().clone();
        let path = semi_sequential_path(&geom, 0, 1, 64);
        assert_eq!(path.len(), 64);
        sim.service(Request::single(path[0])).unwrap();
        let st = geom.sector_time_ms(&geom.zones()[0]);
        for &lbn in &path[1..] {
            let t = sim.service(Request::single(lbn)).unwrap();
            let expect = geom.command_overhead_ms + geom.settle_ms;
            let upper = expect + geom.adjacency_slack_ms + 3.0 * st;
            assert!(
                t.total_ms() >= expect - 1e-9 && t.total_ms() <= upper,
                "semi-seq step cost {} expected in [{expect}, {upper}]",
                t.total_ms(),
            );
        }
    }

    #[test]
    fn deep_adjacency_step_costs_the_same_as_shallow() {
        let mut sim = disk();
        let geom = sim.geometry().clone();
        sim.service(Request::single(0)).unwrap();
        let a1 = adjacent_lbn(&geom, 0, 1).unwrap();
        let t1 = sim.service(Request::single(a1)).unwrap().total_ms();

        let mut sim2 = disk();
        sim2.service(Request::single(0)).unwrap();
        let ad = adjacent_lbn(&geom, 0, geom.adjacency_limit).unwrap();
        let td = sim2.service(Request::single(ad)).unwrap().total_ms();

        let st = geom.sector_time_ms(&geom.zones()[0]);
        assert!(
            (t1 - td).abs() <= 2.0 * st,
            "1st adjacent {t1} vs D-th adjacent {td}"
        );
    }

    #[test]
    fn random_far_access_pays_seek_and_rotation() {
        let mut sim = disk();
        sim.service(Request::single(0)).unwrap();
        // Jump far into the second zone.
        let far = sim.geometry().zones()[1].first_lbn + 12_345;
        let t = sim.service(Request::single(far)).unwrap();
        assert!(t.seek_ms > sim.geometry().settle_ms);
        assert!(t.rotation_ms >= 0.0);
        assert!(t.total_ms() > sim.geometry().settle_ms);
    }

    #[test]
    fn estimate_matches_service() {
        let mut sim = disk();
        sim.service(Request::single(7)).unwrap();
        let req = Request::new(5_000, 10);
        let est = sim.estimate(req).unwrap();
        let got = sim.service(req).unwrap().total_ms();
        assert!((est - got).abs() < 1e-12);
    }

    #[test]
    fn stats_accumulate() {
        let mut sim = disk();
        sim.service(Request::new(0, 10)).unwrap();
        sim.service(Request::new(100, 5)).unwrap();
        let s = sim.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.blocks, 15);
        assert!(s.total_ms > 0.0);
        sim.reset_stats();
        assert_eq!(sim.stats().requests, 0);
    }

    #[test]
    fn idle_breaks_prefetch_chain() {
        let mut sim = disk();
        sim.service(Request::single(0)).unwrap();
        sim.idle(3.7);
        let t = sim.service(Request::single(1)).unwrap();
        // No longer a prefetch hit: rotational wait appears.
        assert!(t.rotation_ms > 0.0 || t.seek_ms > 0.0);
    }

    #[test]
    fn writes_pay_extra_settle_on_positioning() {
        let mut reader = disk();
        let mut writer = disk();
        reader.service(Request::single(0)).unwrap();
        writer.service(Request::single(0)).unwrap();
        // A jump that seeks: the write is slower by exactly the extra
        // settle (modulo the rotational wait absorbing part of it).
        let target = Request::single(50_000);
        let tr = reader.service(target).unwrap();
        let tw = writer.service_write(target).unwrap();
        let extra = reader.geometry().write_settle_extra_ms;
        assert!(
            tw.seek_ms >= tr.seek_ms + extra - 1e-9,
            "write seek {} vs read seek {}",
            tw.seek_ms,
            tr.seek_ms
        );
    }

    #[test]
    fn sequential_writes_stream() {
        let mut sim = disk();
        sim.service_write(Request::single(0)).unwrap();
        let st = sim.geometry().sector_time_ms(&sim.geometry().zones()[0]);
        let oh = sim.geometry().command_overhead_ms;
        for lbn in 1..100u64 {
            let t = sim.service_write(Request::single(lbn)).unwrap();
            assert!(
                (t.total_ms() - (oh + st)).abs() < 1e-9,
                "write-back sequential continuation must stream"
            );
        }
    }

    #[test]
    fn settle_jitter_is_deterministic() {
        let geom = crate::geometry::DiskBuilder::new("jitter")
            .rpm(10_000.0)
            .surfaces(4)
            .zones(vec![crate::geometry::ZoneSpec {
                cylinders: 200,
                sectors_per_track: 120,
            }])
            .settle_ms(1.2)
            .settle_cylinders(8)
            .settle_jitter_ms(0.3)
            .build()
            .unwrap();
        let run = || {
            let mut sim = DiskSim::new(geom.clone());
            let mut total = 0.0;
            for lbn in [0u64, 5_000, 123, 77_000, 42] {
                total += sim.service(Request::single(lbn)).unwrap().total_ms();
            }
            total
        };
        assert_eq!(run(), run(), "identical workloads must replay identically");
    }

    #[test]
    fn estimates_are_not_clairvoyant_about_jitter() {
        let geom = crate::geometry::DiskBuilder::new("jitter")
            .rpm(10_000.0)
            .surfaces(4)
            .zones(vec![crate::geometry::ZoneSpec {
                cylinders: 200,
                sectors_per_track: 120,
            }])
            .settle_ms(1.2)
            .settle_cylinders(8)
            .settle_jitter_ms(0.5)
            .adjacency_slack_ms(0.0)
            .build()
            .unwrap();
        // Jitter is absorbed by a following rotational wait unless the
        // target window is tight. A zero-slack semi-sequential chain has
        // sub-sector windows, so actual jitter must blow some of them
        // past the estimate (which assumes nominal settle).
        let path = crate::adjacency::semi_sequential_path(&geom, 0, 1, 40);
        let mut sim = DiskSim::new(geom);
        sim.service(Request::single(path[0])).unwrap();
        let mut diverged = false;
        for &lbn in &path[1..] {
            let est = sim.estimate(Request::single(lbn)).unwrap();
            let got = sim.service(Request::single(lbn)).unwrap().total_ms();
            if (est - got).abs() > 1e-6 {
                diverged = true;
            }
        }
        assert!(
            diverged,
            "jittered service must diverge from nominal estimates"
        );
    }

    fn jitter_geom(jitter_ms: f64) -> DiskGeometry {
        crate::geometry::DiskBuilder::new("jitter-unit")
            .rpm(10_000.0)
            .surfaces(4)
            .zones(vec![crate::geometry::ZoneSpec {
                cylinders: 200,
                sectors_per_track: 120,
            }])
            .settle_ms(1.2)
            .settle_cylinders(8)
            .settle_jitter_ms(jitter_ms)
            .build()
            .unwrap()
    }

    #[test]
    fn settle_jitter_same_inputs_same_jitter() {
        let geom = jitter_geom(0.4);
        for (t, track) in [(0.0, 0u64), (17.25, 3), (123.456, 799), (9999.0, 1)] {
            let a = settle_jitter(&geom, t, track);
            let b = settle_jitter(&geom, t, track);
            assert_eq!(a, b, "jitter at (t={t}, track={track}) must be stable");
        }
    }

    #[test]
    fn settle_jitter_within_configured_bound() {
        let geom = jitter_geom(0.4);
        let mut distinct = std::collections::BTreeSet::new();
        for i in 0..500u64 {
            let t = i as f64 * 0.731;
            let j = settle_jitter(&geom, t, i % 800);
            assert!(
                (0.0..geom.settle_jitter_ms).contains(&j),
                "jitter {j} outside [0, {})",
                geom.settle_jitter_ms
            );
            distinct.insert(j.to_bits());
        }
        // The hash must actually vary across inputs, not collapse.
        assert!(distinct.len() > 400, "only {} distinct draws", distinct.len());
    }

    #[test]
    fn settle_jitter_zero_profile_short_circuits() {
        let geom = jitter_geom(0.0);
        for (t, track) in [(0.0, 0u64), (55.5, 123), (f64::MAX, 799)] {
            assert_eq!(settle_jitter(&geom, t, track), 0.0);
        }
    }

    #[test]
    fn settle_jitter_distinguishes_time_and_track() {
        let geom = jitter_geom(0.4);
        let base = settle_jitter(&geom, 10.0, 5);
        assert_ne!(base, settle_jitter(&geom, 10.5, 5));
        assert_ne!(base, settle_jitter(&geom, 10.0, 6));
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_no_plan() {
        let run = |install: bool| {
            let mut sim = disk();
            if install {
                sim.set_fault_plan(crate::fault::FaultPlan::none());
            }
            let mut total = 0.0;
            for lbn in [0u64, 5_000, 123, 77_000, 42, 43, 44] {
                total += sim.service(Request::single(lbn)).unwrap().total_ms();
            }
            total
        };
        assert_eq!(run(false).to_bits(), run(true).to_bits());
    }

    #[test]
    fn transient_timeout_burns_clock_and_breaks_prefetch() {
        let mut sim = disk();
        sim.set_fault_plan(
            crate::fault::FaultPlan::new(1)
                .with_transients(1.0, 7.5)
                .with_max_consecutive_transients(1),
        );
        sim.service(Request::single(0)).unwrap_err(); // forced transient
        let before = sim.state().time_ms;
        assert!((before - 7.5).abs() < 1e-12);
        assert_eq!(sim.state().last_end_lbn, None);
        // The cap forces the retry to succeed.
        sim.service(Request::single(0)).unwrap();
        assert_eq!(sim.fault_counts().transients, 1);
    }

    #[test]
    fn media_error_serves_prefix_and_charges_probe() {
        let mut sim = disk();
        sim.set_fault_plan(crate::fault::FaultPlan::new(0).with_media_error(105));
        let err = sim.service(Request::new(100, 10)).unwrap_err();
        assert_eq!(err, DiskError::MediaError { lbn: 105 });
        // The readable prefix [100, 105) was transferred and recorded.
        assert_eq!(sim.stats().blocks, 5);
        // Time advanced past zero: prefix + failed probe both cost.
        assert!(sim.state().time_ms > 0.0);
        assert_eq!(sim.state().last_end_lbn, None);
        assert_eq!(sim.fault_counts().media_errors, 1);
    }

    #[test]
    fn slow_read_inflates_rotation_only() {
        let mut clean = disk();
        let mut slow = disk();
        slow.set_fault_plan(crate::fault::FaultPlan::new(9).with_slow_reads(1.0, 3.25));
        let req = Request::new(1_000, 4);
        let tc = clean.service(req).unwrap();
        let ts = slow.service(req).unwrap();
        assert!((ts.total_ms() - tc.total_ms() - 3.25).abs() < 1e-9);
        assert!((ts.rotation_ms - tc.rotation_ms - 3.25).abs() < 1e-9);
        assert_eq!(ts.seek_ms.to_bits(), tc.seek_ms.to_bits());
        assert_eq!(slow.fault_counts().slow_reads, 1);
    }

    #[test]
    fn faulted_requests_still_validate_bounds_first() {
        let mut sim = disk();
        sim.set_fault_plan(crate::fault::FaultPlan::new(1).with_transients(1.0, 1.0));
        assert_eq!(
            sim.service(Request::new(0, 0)),
            Err(DiskError::EmptyRequest)
        );
        let total = sim.geometry().total_blocks();
        assert!(matches!(
            sim.service(Request::single(total)),
            Err(DiskError::RequestPastEnd { .. })
        ));
        // Neither malformed request consumed a command draw.
        assert_eq!(sim.fault_counts().commands, 0);
    }

    #[test]
    fn reset_rewinds_fault_schedule() {
        let mut sim = disk();
        sim.set_fault_plan(crate::fault::FaultPlan::new(5).with_transients(0.4, 2.0));
        let run = |sim: &mut DiskSim| {
            let mut outcomes = Vec::new();
            for lbn in 0..50u64 {
                outcomes.push(sim.service(Request::single(lbn * 100)).is_ok());
            }
            outcomes
        };
        let first = run(&mut sim);
        sim.reset();
        let second = run(&mut sim);
        assert_eq!(first, second);
    }

    #[test]
    fn time_advances_monotonically() {
        let mut sim = disk();
        let mut last = 0.0;
        for lbn in [0u64, 99_000, 3, 50_000, 4, 5] {
            sim.service(Request::single(lbn)).unwrap();
            assert!(sim.state().time_ms > last);
            last = sim.state().time_ms;
        }
    }
}
