//! Multi-queue SSD backend: per-channel parallel service with
//! queue-depth-dependent command latency and no mechanical positioning.
//!
//! The model follows the shape of multi-queue SSD I/O models (arXiv
//! 2507.06349): the address space is striped across independent
//! channels, each channel serves its commands serially, and commands on
//! different channels overlap in time. A request's latency is
//!
//! ```text
//! wait      — until its channel frees (serialization behind earlier
//!             commands on the same channel),
//! overhead  — fixed command overhead plus a per-queued-command
//!             surcharge (queue-depth-dependent controller latency),
//! transfer  — blocks × per-block flash read/program time.
//! ```
//!
//! There is no settle, no rotation. In the emitted [`RequestTiming`] the
//! channel wait is carried in `seek_ms` (the "repositioning cost" slot),
//! the queue-depth surcharge in `overhead_ms`, `rotation_ms` is always
//! zero — see `docs/backends.md` for the full phase-semantics table.
//!
//! **Adjacency analogue.** On the rotating drive, MultiMap's adjacency
//! is a settle-only hop. Here the cheap step is *channel parallelism*: a
//! request dispatched to an idle channel starts immediately.
//! [`SsdModel`]'s [`DeviceModel::classify`] therefore reports zero-wait
//! dispatches to a fresh channel as [`Transition::AdjacencyHop`],
//! exact sequential continuation as [`Transition::Sequential`], and
//! queued-behind-the-channel dispatches as [`Transition::Seek`].
//!
//! Batch wall-clock ([`BatchTiming::total_ms`]) is the **makespan** —
//! time from batch submission until the last channel falls idle — while
//! [`AccessStats`] accumulates per-request busy time, whose sum can
//! exceed the makespan. This is the one place the rotating-disk
//! invariant "sum of event times == batch total" intentionally breaks;
//! the conformance harness checks makespan ≤ busy-sum instead.

use crate::device::DeviceModel;
use crate::error::{DiskError, Result};
use crate::geometry::Lbn;
use crate::observe::{ServiceEvent, Transition};
use crate::scheduler::{BatchTiming, Discipline};
use crate::sim::{AccessKind, HeadState, Request, RequestTiming};
use crate::stats::AccessStats;

/// Configuration of the multi-queue SSD model.
///
/// `#[non_exhaustive]` with a builder ([`SsdConfig::builder`]), matching
/// the crate-wide options convention: new fields may appear without a
/// breaking change.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub struct SsdConfig {
    /// Total addressable blocks.
    pub capacity_blocks: u64,
    /// Independent channels (parallel flash buses). Must be ≥ 1.
    pub channels: usize,
    /// Consecutive blocks mapped to one channel before striping rotates
    /// to the next. Must be ≥ 1.
    pub stripe_blocks: u64,
    /// Fixed per-command controller overhead in milliseconds.
    pub command_overhead_ms: f64,
    /// Flash read time per block in milliseconds.
    pub read_ms_per_block: f64,
    /// Flash program (write) time per block in milliseconds.
    pub write_ms_per_block: f64,
    /// Additional controller latency per command already queued on the
    /// same channel at dispatch — the queue-depth-dependent term.
    pub queue_slot_ms: f64,
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig {
            capacity_blocks: 1 << 20,
            channels: 8,
            stripe_blocks: 64,
            command_overhead_ms: 0.02,
            read_ms_per_block: 0.015,
            write_ms_per_block: 0.06,
            queue_slot_ms: 0.004,
        }
    }
}

impl SsdConfig {
    /// Start building a configuration from the defaults.
    pub fn builder() -> SsdConfigBuilder {
        SsdConfigBuilder {
            cfg: SsdConfig::default(),
        }
    }
}

/// Builder for [`SsdConfig`].
#[derive(Clone, Debug)]
pub struct SsdConfigBuilder {
    cfg: SsdConfig,
}

impl SsdConfigBuilder {
    /// Total addressable blocks.
    pub fn capacity_blocks(mut self, blocks: u64) -> Self {
        self.cfg.capacity_blocks = blocks;
        self
    }

    /// Number of independent channels (clamped to ≥ 1).
    pub fn channels(mut self, channels: usize) -> Self {
        self.cfg.channels = channels.max(1);
        self
    }

    /// Striping width in blocks (clamped to ≥ 1).
    pub fn stripe_blocks(mut self, blocks: u64) -> Self {
        self.cfg.stripe_blocks = blocks.max(1);
        self
    }

    /// Fixed per-command controller overhead in milliseconds.
    pub fn command_overhead_ms(mut self, ms: f64) -> Self {
        self.cfg.command_overhead_ms = ms;
        self
    }

    /// Flash read time per block in milliseconds.
    pub fn read_ms_per_block(mut self, ms: f64) -> Self {
        self.cfg.read_ms_per_block = ms;
        self
    }

    /// Flash program time per block in milliseconds.
    pub fn write_ms_per_block(mut self, ms: f64) -> Self {
        self.cfg.write_ms_per_block = ms;
        self
    }

    /// Per-queued-command controller surcharge in milliseconds.
    pub fn queue_slot_ms(mut self, ms: f64) -> Self {
        self.cfg.queue_slot_ms = ms;
        self
    }

    /// Finish, yielding the configuration.
    pub fn build(self) -> SsdConfig {
        self.cfg
    }
}

/// The multi-queue SSD device model. See the [module docs](self) for
/// the latency model and phase semantics.
#[derive(Clone, Debug)]
pub struct SsdModel {
    cfg: SsdConfig,
    /// Device clock: completion time of the last submitted work.
    now_ms: f64,
    /// Absolute time each channel is busy until.
    busy_until: Vec<f64>,
    /// One past the last LBN each channel transferred (stream tracking).
    last_end: Vec<Option<Lbn>>,
    /// Requests served per channel since the last stats reset.
    served: Vec<u64>,
    stats: AccessStats,
}

impl SsdModel {
    /// New idle device with the given configuration.
    pub fn new(cfg: SsdConfig) -> Self {
        let channels = cfg.channels.max(1);
        SsdModel {
            cfg,
            now_ms: 0.0,
            busy_until: vec![0.0; channels],
            last_end: vec![None; channels],
            served: vec![0; channels],
            stats: AccessStats::default(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// Channel a block is striped to.
    pub fn channel_of(&self, lbn: Lbn) -> usize {
        ((lbn / self.cfg.stripe_blocks) % self.busy_until.len() as u64) as usize
    }

    /// Requests served per channel since the last stats reset.
    pub fn channel_served(&self) -> &[u64] {
        &self.served
    }

    fn validate(&self, req: Request) -> Result<()> {
        if req.nblocks == 0 {
            return Err(DiskError::EmptyRequest);
        }
        if req.end() > self.cfg.capacity_blocks {
            return Err(DiskError::RequestPastEnd {
                lbn: req.lbn,
                nblocks: req.nblocks,
                total: self.cfg.capacity_blocks,
            });
        }
        Ok(())
    }

    /// Dispatch one validated request at batch clock `t0` with
    /// `queued_ahead` commands already dispatched to its channel in this
    /// batch. Returns the emitted event; channel state and stats are
    /// updated.
    #[allow(clippy::too_many_arguments)] // one slot per ServiceEvent field the caller threads through
    fn dispatch(
        &mut self,
        req: Request,
        kind: AccessKind,
        t0: f64,
        queued_ahead: u64,
        seq: usize,
        admission_rank: usize,
        queue_len: usize,
    ) -> (ServiceEvent, f64) {
        let c = self.channel_of(req.lbn);
        let start = self.busy_until[c].max(t0);
        let wait = start - t0;
        let per_block = match kind {
            AccessKind::Read => self.cfg.read_ms_per_block,
            AccessKind::Write => self.cfg.write_ms_per_block,
        };
        let timing = RequestTiming {
            overhead_ms: self.cfg.command_overhead_ms + self.cfg.queue_slot_ms * queued_ahead as f64,
            seek_ms: wait,
            rotation_ms: 0.0,
            transfer_ms: req.nblocks as f64 * per_block,
        };
        let end = start + timing.overhead_ms + timing.transfer_ms;
        let before = HeadState {
            time_ms: t0,
            cylinder: c as u64,
            surface: 0,
            last_end_lbn: self.last_end[c],
        };
        let after = HeadState {
            time_ms: end,
            cylinder: c as u64,
            surface: 0,
            last_end_lbn: Some(req.end()),
        };
        self.busy_until[c] = end;
        self.last_end[c] = Some(req.end());
        self.served[c] += 1;
        self.stats.record(&timing, req.nblocks);
        let event = ServiceEvent {
            seq,
            admission_rank,
            queue_len,
            kind,
            request: req,
            before,
            after,
            timing,
            fault: Default::default(),
        };
        (event, end)
    }
}

impl DeviceModel for SsdModel {
    fn name(&self) -> &'static str {
        "ssd"
    }

    fn capacity_blocks(&self) -> u64 {
        self.cfg.capacity_blocks
    }

    fn now_ms(&self) -> f64 {
        self.now_ms
    }

    fn service_kind(&mut self, req: Request, kind: AccessKind) -> Result<RequestTiming> {
        self.validate(req)?;
        let t0 = self.now_ms;
        let (event, end) = self.dispatch(req, kind, t0, 0, 0, 0, 1);
        self.now_ms = end;
        Ok(event.timing)
    }

    fn estimate(&self, req: Request) -> Result<f64> {
        self.validate(req)?;
        let c = self.channel_of(req.lbn);
        let wait = (self.busy_until[c] - self.now_ms).max(0.0);
        Ok(wait + self.cfg.command_overhead_ms + req.nblocks as f64 * self.cfg.read_ms_per_block)
    }

    fn service_batch_observed(
        &mut self,
        requests: &[Request],
        discipline: Discipline,
        observe: &mut dyn FnMut(ServiceEvent),
    ) -> Result<BatchTiming> {
        // Requests are validated in issue order at admission, mirroring
        // the rotating scheduler's profile-build error order.
        let window = match discipline {
            Discipline::QueuedSptf(0) => return Err(DiskError::ZeroQueueDepth),
            Discipline::QueuedSptf(depth) => depth,
            _ => requests.len().max(1),
        };
        let t0 = self.now_ms;
        let mut out = BatchTiming::default();
        // (admission rank, request) pending in the controller window.
        let mut pending: Vec<(usize, Request)> = Vec::with_capacity(window.min(requests.len()));
        let mut next = 0usize;
        while next < requests.len() && pending.len() < window {
            self.validate(requests[next])?;
            pending.push((next, requests[next]));
            next += 1;
        }
        // Commands already dispatched per channel in this batch — the
        // queue-depth term of each dispatch.
        let mut depth_on: Vec<u64> = vec![0; self.busy_until.len()];
        let mut makespan_end = t0;
        let mut seq = 0usize;
        while !pending.is_empty() {
            let queue_len = pending.len();
            let pick = match discipline {
                Discipline::InOrder => 0,
                // With every request admitted up front, serving the
                // window in ascending LBN order is the sort.
                Discipline::AscendingLbn => {
                    let mut best = 0;
                    for (i, (rank, req)) in pending.iter().enumerate().skip(1) {
                        let (brank, breq) = &pending[best];
                        if (req.lbn, *rank) < (breq.lbn, *brank) {
                            best = i;
                        }
                    }
                    best
                }
                // The SSD's "shortest positioning" is the earliest
                // channel availability: prefer the request that can
                // start soonest, ties to the earliest-admitted.
                Discipline::Sptf | Discipline::QueuedSptf(_) => {
                    let mut best = 0;
                    let mut best_key = (f64::INFINITY, usize::MAX);
                    for (i, (rank, req)) in pending.iter().enumerate() {
                        let c = self.channel_of(req.lbn);
                        let start = self.busy_until[c].max(t0);
                        out.sched.candidates_examined += 1;
                        if (start, *rank) < best_key {
                            best_key = (start, *rank);
                            best = i;
                        }
                    }
                    best
                }
            };
            let (rank, req) = pending.remove(pick);
            let c = self.channel_of(req.lbn);
            let (event, end) = self.dispatch(req, AccessKind::Read, t0, depth_on[c], seq, rank, queue_len);
            depth_on[c] += 1;
            makespan_end = makespan_end.max(end);
            out.requests += 1;
            out.blocks += req.nblocks;
            out.payload = out.payload.wrapping_add(crate::fault::request_payload(req));
            observe(event);
            seq += 1;
            if next < requests.len() {
                if matches!(discipline, Discipline::QueuedSptf(_)) {
                    // A full window vacated a slot: TCQ admission
                    // pressure, same accounting as the rotating drive.
                    out.sched.window_evictions += 1;
                }
                self.validate(requests[next])?;
                pending.push((next, requests[next]));
                next += 1;
            }
        }
        out.total_ms = makespan_end - t0;
        self.now_ms = makespan_end;
        Ok(out)
    }

    fn classify(&self, event: &ServiceEvent) -> Transition {
        if event.timing.seek_ms > 0.0 {
            // Dispatched behind earlier commands on its channel: the
            // SSD's expensive transition.
            Transition::Seek
        } else if event.is_prefetch_hit() {
            Transition::Sequential
        } else {
            // Started instantly on a free channel — the parallel-channel
            // analogue of the rotating drive's settle-only hop.
            Transition::AdjacencyHop
        }
    }

    fn idle(&mut self, ms: f64) {
        self.now_ms += ms.max(0.0);
    }

    fn reset(&mut self) {
        let channels = self.busy_until.len();
        self.now_ms = 0.0;
        self.busy_until = vec![0.0; channels];
        self.last_end = vec![None; channels];
        self.served = vec![0; channels];
        self.stats = AccessStats::default();
    }

    fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
        for s in &mut self.served {
            *s = 0;
        }
    }

    fn stats(&self) -> AccessStats {
        self.stats
    }

    fn counters(&self) -> Vec<(String, u64)> {
        let mut out = vec![
            ("ssd.channels".to_string(), self.busy_until.len() as u64),
            ("ssd.requests".to_string(), self.stats.requests),
        ];
        for (i, served) in self.served.iter().enumerate() {
            out.push((format!("ssd.channel{i}.served"), *served));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssd() -> SsdModel {
        SsdModel::new(
            SsdConfig::builder()
                .capacity_blocks(100_000)
                .channels(4)
                .stripe_blocks(8)
                .build(),
        )
    }

    #[test]
    fn parallel_channels_overlap() {
        // Four single-block reads on four distinct channels: the batch
        // makespan is one command, not four.
        let mut dev = ssd();
        let reqs: Vec<Request> = (0..4u64).map(|i| Request::single(i * 8)).collect();
        let t = dev.service_batch(&reqs, Discipline::InOrder).unwrap();
        let one = dev.cfg.command_overhead_ms + dev.cfg.read_ms_per_block;
        assert!((t.total_ms - one).abs() < 1e-12, "makespan {} vs {}", t.total_ms, one);
        // Busy time is four commands.
        let stats = DeviceModel::stats(&dev);
        assert!((stats.total_ms - 4.0 * one).abs() < 1e-12);
    }

    #[test]
    fn same_channel_serializes_with_queue_penalty() {
        let mut dev = ssd();
        // Two blocks in the same stripe → same channel.
        let reqs = [Request::single(0), Request::single(1)];
        let mut log = crate::observe::ServiceLog::new();
        let t = dev
            .service_batch_observed(&reqs, Discipline::InOrder, &mut log.recorder())
            .unwrap();
        let e0 = &log.events()[0];
        let e1 = &log.events()[1];
        assert_eq!(e0.timing.seek_ms, 0.0);
        assert!(e1.timing.seek_ms > 0.0, "second command waits for the channel");
        assert!(
            e1.timing.overhead_ms > e0.timing.overhead_ms,
            "queue-depth surcharge applies to the queued command"
        );
        // The queued command's elapsed time (wait + service) spans the
        // whole single-channel batch: the makespan is exactly that.
        assert!((t.total_ms - e1.elapsed_ms()).abs() < 1e-12);
        // Event invariant holds on both.
        for e in log.events() {
            assert!((e.after.time_ms - e.before.time_ms - e.elapsed_ms()).abs() < 1e-9);
        }
    }

    #[test]
    fn classify_reports_channel_adjacency() {
        let mut dev = ssd();
        let mut log = crate::observe::ServiceLog::new();
        // Channel 0, channel 1, then channel 0 again (queued? no — the
        // batch dispatches sequentially in order; third waits only if
        // channel 0 is still busy at its dispatch).
        let reqs = [Request::single(0), Request::single(8), Request::single(1)];
        dev.service_batch_observed(&reqs, Discipline::InOrder, &mut log.recorder())
            .unwrap();
        assert_eq!(dev.classify(&log.events()[0]), Transition::AdjacencyHop);
        assert_eq!(dev.classify(&log.events()[1]), Transition::AdjacencyHop);
        assert_eq!(dev.classify(&log.events()[2]), Transition::Seek);
        // Exact continuation on an idle channel is sequential.
        dev.reset();
        let mut log = crate::observe::ServiceLog::new();
        let reqs = [Request::new(0, 4), Request::new(4, 4)];
        dev.service_batch_observed(&reqs, Discipline::InOrder, &mut log.recorder())
            .unwrap();
        assert_eq!(dev.classify(&log.events()[1]), Transition::Seek); // same channel, queued
        dev.reset();
        dev.service(Request::new(0, 4)).unwrap();
        let mut log = crate::observe::ServiceLog::new();
        dev.service_batch_observed(&[Request::new(4, 4)], Discipline::InOrder, &mut log.recorder())
            .unwrap();
        assert_eq!(dev.classify(&log.events()[0]), Transition::Sequential);
    }

    #[test]
    fn disciplines_serve_identical_payload() {
        let reqs: Vec<Request> = (0..50u64)
            .map(|i| Request::new((i * 977) % 90_000, 1 + i % 3))
            .collect();
        let mut payloads = Vec::new();
        for d in [
            Discipline::InOrder,
            Discipline::AscendingLbn,
            Discipline::Sptf,
            Discipline::QueuedSptf(4),
        ] {
            let mut dev = ssd();
            let t = dev.service_batch(&reqs, d).unwrap();
            assert_eq!(t.requests, 50);
            payloads.push(t.payload);
        }
        assert!(payloads.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn zero_queue_depth_is_typed_error() {
        let mut dev = ssd();
        let err = dev
            .service_batch(&[Request::single(0)], Discipline::QueuedSptf(0))
            .unwrap_err();
        assert_eq!(err, DiskError::ZeroQueueDepth);
    }

    #[test]
    fn validation_matches_disk_error_shapes() {
        let mut dev = ssd();
        assert_eq!(
            dev.service(Request::new(0, 0)).unwrap_err(),
            DiskError::EmptyRequest
        );
        assert_eq!(
            dev.service(Request::new(99_999, 2)).unwrap_err(),
            DiskError::RequestPastEnd {
                lbn: 99_999,
                nblocks: 2,
                total: 100_000
            }
        );
    }

    #[test]
    fn channel_counters_reconcile_with_stats() {
        let mut dev = ssd();
        let reqs: Vec<Request> = (0..40u64).map(|i| Request::single(i * 3)).collect();
        dev.service_batch(&reqs, Discipline::Sptf).unwrap();
        let served: u64 = dev.channel_served().iter().sum();
        assert_eq!(served, DeviceModel::stats(&dev).requests);
        assert_eq!(served, 40);
    }

    #[test]
    fn deterministic_across_runs() {
        let reqs: Vec<Request> = (0..64u64)
            .map(|i| Request::new((i * 7919) % 90_000, 1 + i % 4))
            .collect();
        let run = || {
            let mut dev = ssd();
            let mut log = crate::observe::ServiceLog::new();
            let t = dev
                .service_batch_observed(&reqs, Discipline::QueuedSptf(8), &mut log.recorder())
                .unwrap();
            (t, log)
        };
        let (t1, l1) = run();
        let (t2, l2) = run();
        assert_eq!(t1, t2);
        assert_eq!(t1.total_ms.to_bits(), t2.total_ms.to_bits());
        assert_eq!(l1, l2);
    }
}
