//! Error type shared by the disk simulator.

use std::fmt;

use crate::geometry::Lbn;

/// Errors raised by geometry resolution and request servicing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiskError {
    /// An LBN beyond the end of the disk was referenced.
    LbnOutOfRange {
        /// The offending LBN.
        lbn: Lbn,
        /// Total number of blocks on the disk.
        total: u64,
    },
    /// A cylinder index beyond the end of the disk was referenced.
    CylinderOutOfRange {
        /// The offending cylinder.
        cylinder: u64,
        /// Total number of cylinders.
        total: u64,
    },
    /// A surface index not present on this disk was referenced.
    SurfaceOutOfRange {
        /// The offending surface.
        surface: u32,
        /// Number of surfaces on the disk.
        total: u32,
    },
    /// A sector index past the end of its track was referenced.
    SectorOutOfRange {
        /// The offending sector.
        sector: u32,
        /// Sectors per track in the containing zone.
        spt: u32,
    },
    /// A request with zero blocks was submitted.
    EmptyRequest,
    /// A request runs past the end of the disk.
    RequestPastEnd {
        /// Start of the request.
        lbn: Lbn,
        /// Length of the request in blocks.
        nblocks: u64,
        /// Total number of blocks on the disk.
        total: u64,
    },
    /// The geometry description is inconsistent.
    InvalidGeometry(&'static str),
    /// No adjacent block exists (e.g. the target track leaves the zone).
    NoAdjacentBlock {
        /// The starting LBN.
        lbn: Lbn,
        /// The requested adjacency step (1-based).
        step: u32,
    },
    /// A latent media error: the block is unreadable until remapped.
    MediaError {
        /// The unreadable LBN.
        lbn: Lbn,
    },
    /// A transient command timeout: the command aborted, but a retry of
    /// the same request may succeed.
    TransientTimeout {
        /// First LBN of the aborted command.
        lbn: Lbn,
    },
    /// A queued-SPTF batch was submitted with `queue_depth == 0`: a
    /// zero-slot TCQ window can never admit a request.
    ZeroQueueDepth,
    /// A device backend name not present in the registry was requested
    /// (see `crate::device::build_backend`).
    UnknownBackend {
        /// The unrecognized backend name.
        name: String,
    },
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::LbnOutOfRange { lbn, total } => {
                write!(f, "LBN {lbn} out of range (disk has {total} blocks)")
            }
            DiskError::CylinderOutOfRange { cylinder, total } => {
                write!(f, "cylinder {cylinder} out of range (disk has {total})")
            }
            DiskError::SurfaceOutOfRange { surface, total } => {
                write!(f, "surface {surface} out of range (disk has {total})")
            }
            DiskError::SectorOutOfRange { sector, spt } => {
                write!(f, "sector {sector} out of range (track holds {spt})")
            }
            DiskError::EmptyRequest => write!(f, "request has zero blocks"),
            DiskError::RequestPastEnd {
                lbn,
                nblocks,
                total,
            } => write!(
                f,
                "request [{lbn}, {lbn}+{nblocks}) runs past end of disk ({total} blocks)"
            ),
            DiskError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            DiskError::NoAdjacentBlock { lbn, step } => {
                write!(f, "LBN {lbn} has no {step}-th adjacent block in its zone")
            }
            DiskError::MediaError { lbn } => {
                write!(f, "media error: LBN {lbn} is unreadable")
            }
            DiskError::TransientTimeout { lbn } => {
                write!(f, "transient timeout servicing command at LBN {lbn}")
            }
            DiskError::ZeroQueueDepth => {
                write!(f, "queued SPTF requires a queue depth of at least 1")
            }
            DiskError::UnknownBackend { name } => {
                write!(f, "unknown device backend {name:?} (known: disk, ssd, imr)")
            }
        }
    }
}

impl std::error::Error for DiskError {}

/// Convenience alias used throughout the simulator.
pub type Result<T> = std::result::Result<T, DiskError>;
