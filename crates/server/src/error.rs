//! Typed errors for the serving layer.

use multimap_core::MappingError;
use multimap_lvm::LvmError;

/// Serving-layer result.
pub type Result<T> = std::result::Result<T, ServerError>;

/// Anything that can go wrong while serving a scenario.
#[derive(Debug)]
pub enum ServerError {
    /// The volume rejected a service call.
    Lvm(LvmError),
    /// A tenant request failed cell→LBN translation.
    Mapping(MappingError),
    /// The scenario itself is malformed (empty tenant list, zero
    /// batch window, beam dimension out of range, …).
    Config(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Lvm(e) => write!(f, "volume error: {e}"),
            ServerError::Mapping(e) => write!(f, "translation error: {e}"),
            ServerError::Config(msg) => write!(f, "invalid scenario: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Lvm(e) => Some(e),
            ServerError::Mapping(e) => Some(e),
            ServerError::Config(_) => None,
        }
    }
}

impl From<LvmError> for ServerError {
    fn from(e: LvmError) -> Self {
        ServerError::Lvm(e)
    }
}

impl From<MappingError> for ServerError {
    fn from(e: MappingError) -> Self {
        ServerError::Mapping(e)
    }
}
