//! Seeded client populations: open-loop and closed-loop beam-query
//! generators.
//!
//! Every random quantity is a counter-indexed splitmix64 draw (the
//! fault-injection idiom from `multimap-disksim`): a draw depends only
//! on `(scenario seed, tenant, stream, sequence number)`, never on
//! evaluation order, so a scenario replays byte-identically regardless
//! of host, thread count, or how the serving loop interleaves tenants.

use multimap_core::{Coord, GridSpec};

/// Stream selector for inter-arrival draws (open-loop clients).
const STREAM_ARRIVAL: u64 = 0x8F1B_ADD0_C355_9A42;
/// Stream selector for think-time draws (closed-loop clients).
const STREAM_THINK: u64 = 0x2E86_D5B4_9D6C_7A31;
/// Stream selector for anchor-coordinate draws.
const STREAM_ANCHOR: u64 = 0x713C_F0E1_8A5B_22D7;

/// splitmix64 finaliser: a high-quality 64-bit mixer.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A uniform draw in `[0, 1)` for counter `n` of `stream`.
#[inline]
fn draw(seed: u64, stream: u64, n: u64) -> f64 {
    let x = mix64(seed ^ stream ^ n.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// How a tenant generates load.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LoadModel {
    /// Poisson arrivals at `rate_rps` requests per second, issued
    /// regardless of completions — the generator that exposes queueing
    /// collapse, because offered load does not back off.
    OpenLoop {
        /// Mean arrival rate, requests per second of simulated time.
        rate_rps: f64,
    },
    /// One request in flight at a time; the next is issued a jittered
    /// think time after the previous one resolves (completes, sheds,
    /// or is rejected) — the generator whose throughput self-limits.
    ClosedLoop {
        /// Mean think time between resolution and the next request,
        /// in simulated milliseconds (jittered uniformly ±50%).
        think_ms: f64,
    },
}

impl LoadModel {
    /// Short slug for tables and JSON ("open"/"closed").
    pub fn slug(&self) -> &'static str {
        match self {
            LoadModel::OpenLoop { .. } => "open",
            LoadModel::ClosedLoop { .. } => "closed",
        }
    }
}

/// One tenant of the serving scenario.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Display name ("tenant-a").
    pub name: String,
    /// Relative share under [`crate::FairnessPolicy::WeightedTenant`].
    pub weight: f64,
    /// Arrival process.
    pub load: LoadModel,
    /// Total requests this tenant submits over the scenario.
    pub requests: usize,
    /// Relative deadline per request, in simulated milliseconds;
    /// requests not dispatched by `arrival + deadline_ms` are shed.
    pub deadline_ms: f64,
    /// Grid dimension this tenant's beam queries stream along.
    pub dim: usize,
}

/// One generated beam query.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantRequest {
    /// Owning tenant index into the scenario's tenant list.
    pub tenant: usize,
    /// Per-tenant sequence number (0-based).
    pub seq: usize,
    /// Absolute arrival time on the simulated clock, ms.
    pub arrival_ms: f64,
    /// Absolute deadline, ms (`arrival_ms + spec.deadline_ms`).
    pub deadline_ms: f64,
    /// Beam dimension.
    pub dim: usize,
    /// Anchor coordinate (the beam spans the full extent of `dim`).
    pub anchor: Coord,
}

/// Deterministic per-tenant request generator driven by the serving
/// loop: [`ClientGen::peek_arrival`] exposes the next arrival time (if
/// one is currently schedulable), [`ClientGen::emit`] materialises it,
/// and — for closed-loop tenants — [`ClientGen::resolve`] unblocks the
/// next request when the in-flight one finishes.
#[derive(Debug)]
pub struct ClientGen {
    spec: TenantSpec,
    tenant: usize,
    /// Tenant-folded scenario seed: all draws key off this.
    seed: u64,
    grid: GridSpec,
    /// Requests emitted so far (the next sequence number).
    emitted: usize,
    /// Next arrival time, when known. For closed-loop tenants this is
    /// `None` while a request is in flight.
    next_arrival: Option<f64>,
}

impl ClientGen {
    /// A generator for `spec` as tenant number `tenant` of a scenario
    /// seeded with `seed`, querying `grid`.
    pub fn new(spec: &TenantSpec, tenant: usize, seed: u64, grid: &GridSpec) -> Self {
        let folded = mix64(seed ^ mix64(tenant as u64 + 1));
        let mut gen = ClientGen {
            spec: spec.clone(),
            tenant,
            seed: folded,
            grid: grid.clone(),
            emitted: 0,
            next_arrival: None,
        };
        if gen.spec.requests > 0 {
            // First arrival: offset from time zero by one inter-arrival
            // (open loop) or one think time (closed loop), so tenants
            // do not all fire at t = 0.
            gen.next_arrival = Some(gen.gap_before(0));
        }
        gen
    }

    /// The inter-arrival (or think) gap preceding request `seq`.
    fn gap_before(&self, seq: usize) -> f64 {
        match self.spec.load {
            LoadModel::OpenLoop { rate_rps } => {
                // Exponential inter-arrival with mean 1000/rate ms.
                let u = draw(self.seed, STREAM_ARRIVAL, seq as u64);
                -(1.0 - u).ln() * 1000.0 / rate_rps
            }
            LoadModel::ClosedLoop { think_ms } => {
                // Uniform jitter in [0.5, 1.5) × think.
                let u = draw(self.seed, STREAM_THINK, seq as u64);
                think_ms * (0.5 + u)
            }
        }
    }

    /// Requests not yet emitted.
    pub fn remaining(&self) -> usize {
        self.spec.requests - self.emitted
    }

    /// The next arrival time, if a request is currently schedulable.
    /// `None` means either the tenant is exhausted or (closed loop) it
    /// is waiting on an in-flight request.
    pub fn peek_arrival(&self) -> Option<f64> {
        self.next_arrival
    }

    /// Materialise the next request (the one [`ClientGen::peek_arrival`]
    /// announced). Panics if none is schedulable — the serving loop only
    /// calls this behind a `peek_arrival()` check.
    pub fn emit(&mut self) -> TenantRequest {
        // staticcheck: allow(no-unwrap) — documented contract: callers gate emit() behind peek_arrival().
        let arrival = self.next_arrival.take().expect("emit() without a schedulable arrival");
        let seq = self.emitted;
        self.emitted += 1;
        match self.spec.load {
            LoadModel::OpenLoop { .. } => {
                if self.emitted < self.spec.requests {
                    self.next_arrival = Some(arrival + self.gap_before(self.emitted));
                }
            }
            // Closed loop blocks until resolve().
            LoadModel::ClosedLoop { .. } => {}
        }
        TenantRequest {
            tenant: self.tenant,
            seq,
            arrival_ms: arrival,
            deadline_ms: arrival + self.spec.deadline_ms,
            dim: self.spec.dim,
            anchor: self.anchor_for(seq),
        }
    }

    /// Closed-loop completion callback: request `seq`'s fate is known
    /// at `at_ms`, so the next request arrives one think time later.
    /// No-op for open-loop tenants (their arrivals never block).
    pub fn resolve(&mut self, at_ms: f64) {
        if let LoadModel::ClosedLoop { .. } = self.spec.load {
            if self.emitted < self.spec.requests {
                self.next_arrival = Some(at_ms + self.gap_before(self.emitted));
            }
        }
    }

    /// The anchor coordinate of request `seq`: uniform over every
    /// dimension except the beam dimension (fixed at 0 — the beam spans
    /// its full extent anyway).
    fn anchor_for(&self, seq: usize) -> Coord {
        let ndims = self.grid.ndims() as u64;
        (0..self.grid.ndims())
            .map(|d| {
                if d == self.spec.dim {
                    0
                } else {
                    let extent = self.grid.extent(d);
                    let u = draw(self.seed, STREAM_ANCHOR, (seq as u64) * ndims + d as u64);
                    ((u * extent as f64) as u64).min(extent - 1)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(load: LoadModel) -> TenantSpec {
        TenantSpec {
            name: "t".into(),
            weight: 1.0,
            load,
            requests: 5,
            deadline_ms: 100.0,
            dim: 1,
        }
    }

    #[test]
    fn open_loop_arrivals_are_monotone_and_replayable() {
        let grid = GridSpec::new([16u64, 8, 4]);
        let s = spec(LoadModel::OpenLoop { rate_rps: 50.0 });
        let run = |seed: u64| {
            let mut g = ClientGen::new(&s, 3, seed, &grid);
            let mut out = Vec::new();
            while g.peek_arrival().is_some() {
                out.push(g.emit());
            }
            out
        };
        let a = run(42);
        assert_eq!(a.len(), 5);
        for w in a.windows(2) {
            assert!(w[0].arrival_ms <= w[1].arrival_ms);
        }
        for r in &a {
            assert!(r.deadline_ms > r.arrival_ms);
            assert_eq!(r.anchor.len(), 3);
            assert_eq!(r.anchor[1], 0, "beam dimension anchors at 0");
            assert!(r.anchor[0] < 16 && r.anchor[2] < 4);
        }
        assert_eq!(a, run(42), "same seed replays identically");
        assert_ne!(a, run(43), "different seed diverges");
    }

    #[test]
    fn closed_loop_blocks_until_resolution() {
        let grid = GridSpec::new([16u64, 8, 4]);
        let s = spec(LoadModel::ClosedLoop { think_ms: 10.0 });
        let mut g = ClientGen::new(&s, 0, 7, &grid);
        let first = g.peek_arrival().expect("first request schedulable");
        let r0 = g.emit();
        assert!((r0.arrival_ms - first).abs() < 1e-12);
        assert!(g.peek_arrival().is_none(), "in flight: nothing schedulable");
        g.resolve(50.0);
        let second = g.peek_arrival().expect("resolved: next schedulable");
        // Think jitter is ±50% around 10 ms.
        assert!((55.0..65.0).contains(&second), "{second}");
        assert_eq!(g.remaining(), 4);
    }

    #[test]
    fn draws_are_order_independent() {
        // Request 4's anchor must not depend on whether requests 0–3
        // were generated first (counter-indexed streams).
        let grid = GridSpec::new([32u64, 32, 32]);
        let s = spec(LoadModel::OpenLoop { rate_rps: 10.0 });
        let mut g1 = ClientGen::new(&s, 1, 99, &grid);
        for _ in 0..4 {
            g1.emit();
        }
        let direct = g1.anchor_for(4);
        let g2 = ClientGen::new(&s, 1, 99, &grid);
        assert_eq!(g2.anchor_for(4), direct);
    }
}
