//! Per-tenant SLO reports and the scenario-level serving report.

use multimap_telemetry::{Histogram, Metrics};

/// How one submitted request ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Served by the device; latency recorded.
    Completed,
    /// Dropped because its deadline passed before dispatch (at
    /// admission or while queued). Never reached the device.
    ShedDeadline,
    /// Turned away at admission because the queue was at its depth cap.
    /// Never reached the device.
    RejectedQueueFull,
}

impl Outcome {
    fn code(&self) -> u64 {
        match self {
            Outcome::Completed => 1,
            Outcome::ShedDeadline => 2,
            Outcome::RejectedQueueFull => 3,
        }
    }
}

/// One resolved request in resolution order — the replay witness the
/// determinism pins compare across thread counts.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEntry {
    /// Owning tenant.
    pub tenant: usize,
    /// Per-tenant sequence number.
    pub seq: usize,
    /// The request's fate.
    pub outcome: Outcome,
    /// Simulated time at which the fate was decided (completion time,
    /// shed time, or rejection time).
    pub resolve_ms: f64,
}

/// Per-tenant serving outcome: admission counters, the end-to-end
/// latency histogram (arrival → completion, including queueing), and
/// per-phase device telemetry for this tenant's share of every batch.
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// Tenant display name.
    pub name: String,
    /// Requests the generator submitted.
    pub submitted: u64,
    /// Requests that entered the queue.
    pub admitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests dropped for a passed deadline.
    pub shed_deadline: u64,
    /// Requests rejected at the queue-depth cap.
    pub rejected_queue_full: u64,
    /// Disk requests dispatched on this tenant's behalf.
    pub disk_requests: u64,
    /// End-to-end latency of completed requests.
    pub latency: Histogram,
    /// Per-phase decomposition of this tenant's device time.
    pub metrics: Metrics,
}

impl TenantReport {
    /// Median latency (upper bucket edge), if any request completed.
    pub fn p50(&self) -> Option<f64> {
        self.latency.quantile(0.50)
    }

    /// 99th-percentile latency (upper bucket edge).
    pub fn p99(&self) -> Option<f64> {
        self.latency.quantile(0.99)
    }

    /// 99.9th-percentile latency (upper bucket edge).
    pub fn p999(&self) -> Option<f64> {
        self.latency.quantile(0.999)
    }

    /// Exact bit-equality witness (counters, histogram, metrics).
    pub fn identical(&self, other: &TenantReport) -> bool {
        self.name == other.name
            && self.submitted == other.submitted
            && self.admitted == other.admitted
            && self.completed == other.completed
            && self.shed_deadline == other.shed_deadline
            && self.rejected_queue_full == other.rejected_queue_full
            && self.disk_requests == other.disk_requests
            && self.latency.identical(&other.latency)
            && self.metrics.identical(&other.metrics)
    }
}

/// The full outcome of serving one scenario.
#[derive(Clone, Debug)]
pub struct ServingReport {
    /// Backend registry name ("disk"/"ssd"/"imr").
    pub backend: String,
    /// Mapping name ("MultiMap", "Naive", …).
    pub mapping: String,
    /// Fairness policy slug.
    pub policy: String,
    /// Per-tenant reports, tenant order.
    pub tenants: Vec<TenantReport>,
    /// Dispatch rounds executed.
    pub batches: u64,
    /// Total disk requests dispatched.
    pub dispatched_requests: u64,
    /// Simulated time at which the last request resolved.
    pub makespan_ms: f64,
    /// Every request's fate, in resolution order.
    pub trace: Vec<TraceEntry>,
    /// `(tenant, seq)` of every request sent to the device, dispatch
    /// order — the witness that shed requests never reach a batch.
    pub dispatched: Vec<(usize, usize)>,
    /// Order-dependent fold over `trace` (splitmix64): one u64 that
    /// changes if any fate, order, or timing changes.
    pub digest: u64,
}

impl ServingReport {
    /// Latencies of all tenants merged (tenant order, deterministic).
    pub fn merged_latency(&self) -> Histogram {
        let mut h = Histogram::new();
        for t in &self.tenants {
            h.merge(&t.latency);
        }
        h
    }

    /// Exact bit-equality witness across whole reports — the
    /// determinism pin for replays at different thread counts.
    pub fn identical(&self, other: &ServingReport) -> bool {
        self.backend == other.backend
            && self.mapping == other.mapping
            && self.policy == other.policy
            && self.batches == other.batches
            && self.dispatched_requests == other.dispatched_requests
            // staticcheck: allow(float-cmp) — bit-equality is the point
            // of the determinism witness.
            && self.makespan_ms.to_bits() == other.makespan_ms.to_bits()
            && self.digest == other.digest
            && self.dispatched == other.dispatched
            && self.trace.len() == other.trace.len()
            && self
                .trace
                .iter()
                .zip(other.trace.iter())
                .all(|(a, b)| {
                    a.tenant == b.tenant
                        && a.seq == b.seq
                        && a.outcome == b.outcome
                        // staticcheck: allow(float-cmp) — exact-bits witness.
                        && a.resolve_ms.to_bits() == b.resolve_ms.to_bits()
                })
            && self.tenants.len() == other.tenants.len()
            && self
                .tenants
                .iter()
                .zip(other.tenants.iter())
                .all(|(a, b)| a.identical(b))
    }

    /// Deterministic JSON summary (no trace — counters, SLO quantiles,
    /// and the digest), stable enough to diff byte-for-byte.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let quant = |v: Option<f64>| match v {
            Some(x) => format!("{x:.3}"),
            None => "null".to_string(),
        };
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"backend\": \"{}\",", self.backend);
        let _ = writeln!(out, "  \"mapping\": \"{}\",", self.mapping);
        let _ = writeln!(out, "  \"policy\": \"{}\",", self.policy);
        let _ = writeln!(out, "  \"batches\": {},", self.batches);
        let _ = writeln!(out, "  \"dispatched_requests\": {},", self.dispatched_requests);
        let _ = writeln!(out, "  \"makespan_ms\": {:.6},", self.makespan_ms);
        let _ = writeln!(out, "  \"digest\": \"{:016x}\",", self.digest);
        let _ = writeln!(out, "  \"tenants\": [");
        for (i, t) in self.tenants.iter().enumerate() {
            let comma = if i + 1 < self.tenants.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"submitted\": {}, \"admitted\": {}, \"completed\": {}, \
                 \"shed_deadline\": {}, \"rejected_queue_full\": {}, \"disk_requests\": {}, \
                 \"p50_ms\": {}, \"p99_ms\": {}, \"p999_ms\": {}, \"mean_ms\": {}, \"max_ms\": {}}}{comma}",
                t.name,
                t.submitted,
                t.admitted,
                t.completed,
                t.shed_deadline,
                t.rejected_queue_full,
                t.disk_requests,
                quant(t.p50()),
                quant(t.p99()),
                quant(t.p999()),
                if t.latency.count() == 0 {
                    "null".to_string()
                } else {
                    format!("{:.6}", t.latency.mean_ms())
                },
                if t.latency.count() == 0 {
                    "null".to_string()
                } else {
                    format!("{:.6}", t.latency.max_ms())
                },
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = write!(out, "}}");
        out
    }
}

/// splitmix64 finaliser, the digest mixer.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Fold one trace entry into the running digest.
pub(crate) fn fold_digest(digest: u64, e: &TraceEntry) -> u64 {
    mix64(
        digest
            ^ mix64(e.tenant as u64 + 1)
            ^ mix64((e.seq as u64) << 2 | e.outcome.code())
            ^ e.resolve_ms.to_bits(),
    )
}
