//! # multimap-server — deterministic multi-tenant serving layer
//!
//! The paper evaluates MultiMap under single-stream batch access; this
//! crate asks the production question ROADMAP item 1 names: *does the
//! adjacency advantage survive queueing and interleaved multi-tenant
//! access?* It models an online serving scenario entirely on the
//! simulated clock:
//!
//! * **Client populations** ([`workload`]): open-loop generators
//!   (seeded Poisson arrivals that do not wait for completions) and
//!   closed-loop generators (think-time clients that issue the next
//!   beam query only after the previous one resolves). Every draw comes
//!   from splitmix64 counter streams, so a scenario replays
//!   byte-identically on any host at any `MULTIMAP_THREADS`.
//! * **Admission control** ([`server`]): a per-volume queue with a
//!   depth cap (arrivals beyond it are rejected) and deadline shedding
//!   (requests whose deadline passes before dispatch are dropped, never
//!   sent to the device).
//! * **Cross-client batching**: each dispatch round drains up to a
//!   batch window of queued requests — from *different* tenants — into
//!   one `DeviceModel::service_batch(.., Discipline::QueuedSptf)` call,
//!   so the device's own scheduler interleaves tenants exactly as a
//!   real tagged-command-queue disk (or multi-queue SSD) would.
//! * **Fairness policies** ([`policy`]): FIFO, earliest-deadline-first,
//!   and per-tenant weighted (deficit round-robin) request selection.
//! * **SLO reporting** ([`report`]): per-tenant latency histograms with
//!   p50/p99/p999 (via `Histogram::quantile`), per-phase telemetry from
//!   backend-classified service events, and exact admission counters
//!   that reconcile (`submitted == completed + shed + rejected`).
//!
//! The crate is serial by construction — one scenario is one
//! deterministic event loop. Parallelism lives a layer up: the bench
//! serving sweep fans independent (mapping × backend × tenants ×
//! policy) scenarios across `multimap-engine` workers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod policy;
pub mod report;
pub mod server;
pub mod workload;

pub use error::{Result, ServerError};
pub use policy::FairnessPolicy;
pub use report::{Outcome, ServingReport, TenantReport, TraceEntry};
pub use server::{serve_scenario, Scenario};
pub use workload::{LoadModel, TenantRequest, TenantSpec};
