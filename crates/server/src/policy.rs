//! Pluggable request-selection (fairness) policies.
//!
//! A policy decides *which* queued requests fill the next dispatch
//! batch; the device's own scheduler then decides the service *order*
//! within the batch ([`multimap_disksim::Discipline::QueuedSptf`]).
//! All three policies are deterministic: ties break on admission
//! sequence, then tenant index — never on iteration order of an
//! unordered container.

use crate::workload::TenantRequest;

/// Which queued requests are dispatched first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FairnessPolicy {
    /// Admission order: first queued, first dispatched.
    Fifo,
    /// Earliest absolute deadline first (ties: admission order) — the
    /// shed-minimising policy.
    EarliestDeadline,
    /// Deficit round-robin over tenants: each round a tenant earns
    /// credit proportional to its weight and spends one credit per
    /// dispatched request, so long-run dispatch shares converge to the
    /// weight ratios even when one tenant floods the queue.
    WeightedTenant,
}

/// All policies, in the order benches sweep them.
pub const POLICY_NAMES: [FairnessPolicy; 3] = [
    FairnessPolicy::Fifo,
    FairnessPolicy::EarliestDeadline,
    FairnessPolicy::WeightedTenant,
];

impl FairnessPolicy {
    /// Slug for tables, JSON, and CLI flags.
    pub fn slug(&self) -> &'static str {
        match self {
            FairnessPolicy::Fifo => "fifo",
            FairnessPolicy::EarliestDeadline => "edf",
            FairnessPolicy::WeightedTenant => "weighted",
        }
    }
}

impl std::fmt::Display for FairnessPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.slug())
    }
}

/// A request sitting in the admission queue.
#[derive(Clone, Debug)]
pub struct Queued {
    /// The tenant request.
    pub req: TenantRequest,
    /// Global admission sequence number (FIFO ordering key).
    pub admit_seq: u64,
}

/// Select up to `window` requests out of `pending` (removing them),
/// in dispatch order. `credits` is the policy's persistent per-tenant
/// deficit state (ignored except by
/// [`FairnessPolicy::WeightedTenant`]); `weights` the tenant weights.
pub fn select_batch(
    policy: FairnessPolicy,
    pending: &mut Vec<Queued>,
    window: usize,
    credits: &mut [f64],
    weights: &[f64],
) -> Vec<Queued> {
    let take = window.min(pending.len());
    if take == 0 {
        return Vec::new();
    }
    match policy {
        FairnessPolicy::Fifo => pending.drain(..take).collect(),
        FairnessPolicy::EarliestDeadline => {
            // Sort a copy of the *indices* by (deadline, admission) and
            // pull the winners out of the queue back-to-front so the
            // removal indices stay valid.
            let mut order: Vec<usize> = (0..pending.len()).collect();
            order.sort_by(|&a, &b| {
                pending[a]
                    .req
                    .deadline_ms
                    .total_cmp(&pending[b].req.deadline_ms)
                    .then(pending[a].admit_seq.cmp(&pending[b].admit_seq))
            });
            let mut winners = order[..take].to_vec();
            winners.sort_unstable();
            let mut batch: Vec<Queued> =
                winners.iter().rev().map(|&i| pending.remove(i)).collect();
            // `remove` back-to-front reversed the order; dispatch order
            // is earliest deadline first.
            batch.sort_by(|a, b| {
                a.req
                    .deadline_ms
                    .total_cmp(&b.req.deadline_ms)
                    .then(a.admit_seq.cmp(&b.admit_seq))
            });
            batch
        }
        FairnessPolicy::WeightedTenant => {
            // Deficit round-robin. Tenants with queued work earn their
            // weight in credit each dispatch round; idle tenants reset
            // to zero (no hoarding across idle periods).
            for (t, c) in credits.iter_mut().enumerate() {
                if pending.iter().any(|q| q.req.tenant == t) {
                    *c += weights.get(t).copied().unwrap_or(1.0);
                } else {
                    *c = 0.0;
                }
            }
            let mut batch = Vec::with_capacity(take);
            while batch.len() < take {
                // Richest tenant that still has queued work; ties break
                // to the lowest tenant index.
                let mut best: Option<usize> = None;
                for q in pending.iter() {
                    let t = q.req.tenant;
                    match best {
                        None => best = Some(t),
                        Some(b) => match credits[t].total_cmp(&credits[b]) {
                            std::cmp::Ordering::Greater => best = Some(t),
                            std::cmp::Ordering::Equal if t < b => best = Some(t),
                            _ => {}
                        },
                    }
                }
                // staticcheck: allow(no-unwrap) — loop precondition: pending is non-empty while batch < take, so a max-credit tenant exists.
                let t = best.expect("pending is non-empty while batch < take");
                // That tenant's earliest-admitted request.
                let i = pending
                    .iter()
                    .position(|q| q.req.tenant == t)
                    // staticcheck: allow(no-unwrap) — `t` was selected from tenants with queued work two lines up.
                    .expect("winner has queued work");
                credits[t] -= 1.0;
                batch.push(pending.remove(i));
            }
            batch
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_core::Coord;

    fn q(tenant: usize, seq: usize, deadline: f64, admit: u64) -> Queued {
        Queued {
            req: TenantRequest {
                tenant,
                seq,
                arrival_ms: 0.0,
                deadline_ms: deadline,
                dim: 0,
                anchor: Coord::from([0u64, 0, 0]),
            },
            admit_seq: admit,
        }
    }

    #[test]
    fn fifo_takes_admission_order() {
        let mut pending = vec![q(0, 0, 9.0, 0), q(1, 0, 1.0, 1), q(0, 1, 5.0, 2)];
        let batch = select_batch(FairnessPolicy::Fifo, &mut pending, 2, &mut [], &[]);
        assert_eq!(
            batch.iter().map(|b| b.admit_seq).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(pending.len(), 1);
    }

    #[test]
    fn edf_takes_earliest_deadlines_with_stable_ties() {
        let mut pending = vec![
            q(0, 0, 9.0, 0),
            q(1, 0, 1.0, 1),
            q(2, 0, 1.0, 2),
            q(0, 1, 5.0, 3),
        ];
        let batch = select_batch(FairnessPolicy::EarliestDeadline, &mut pending, 3, &mut [], &[]);
        assert_eq!(
            batch.iter().map(|b| b.admit_seq).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "deadline order, admission tie-break"
        );
        assert_eq!(pending[0].admit_seq, 0);
    }

    #[test]
    fn weighted_converges_to_weight_ratios() {
        // Tenant 0 (weight 3) and tenant 1 (weight 1) both flood the
        // queue; over many rounds dispatches split 3:1.
        let weights = [3.0, 1.0];
        let mut credits = [0.0, 0.0];
        let mut served = [0usize, 0];
        let mut admit = 0u64;
        let mut pending: Vec<Queued> = Vec::new();
        for round in 0..100 {
            // Keep both backlogs topped up.
            for t in 0..2 {
                for s in 0..4 {
                    pending.push(q(t, round * 4 + s, 1e9, admit));
                    admit += 1;
                }
            }
            for b in select_batch(
                FairnessPolicy::WeightedTenant,
                &mut pending,
                4,
                &mut credits,
                &weights,
            ) {
                served[b.req.tenant] += 1;
            }
        }
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "served {served:?}, ratio {ratio}");
    }

    #[test]
    fn weighted_never_starves_a_backlogged_tenant() {
        let weights = [100.0, 1.0];
        let mut credits = [0.0, 0.0];
        let mut pending: Vec<Queued> = (0..40)
            .map(|i| q(i % 2, i / 2, 1e9, i as u64))
            .collect();
        let mut served1 = 0;
        for _ in 0..10 {
            for b in select_batch(
                FairnessPolicy::WeightedTenant,
                &mut pending,
                4,
                &mut credits,
                &weights,
            ) {
                if b.req.tenant == 1 {
                    served1 += 1;
                }
            }
        }
        assert!(served1 > 0, "weight-1 tenant must still be dispatched");
        assert!(pending.is_empty());
    }
}
