//! The simulated-clock serving loop: admission, batching, dispatch.
//!
//! One scenario is one run-to-completion event loop (the idos-style
//! minimal server idiom): at each iteration the loop admits every
//! arrival at or before the device clock, sheds queued requests whose
//! deadline has passed, selects up to a batch window of requests by the
//! scenario's fairness policy, and dispatches them as a single
//! cross-tenant batch through
//! [`Discipline::QueuedSptf`](multimap_disksim::Discipline) — so the
//! device's own scheduler interleaves tenants exactly as a tagged
//! command queue would. When the queue is empty the device idles
//! forward to the next arrival. Everything runs on the simulated clock;
//! the loop is serial and byte-identically replayable.

use std::collections::{BTreeMap, VecDeque};

use multimap_core::{BoxRegion, Mapping};
use multimap_disksim::{DeviceModel, Request};
use multimap_lvm::{DeviceVolume, SchedulePolicy};
use multimap_query::record_classified_event;
use multimap_telemetry::{Histogram, Metrics};

use crate::error::{Result, ServerError};
use crate::policy::{select_batch, FairnessPolicy, Queued};
use crate::report::{fold_digest, mix64, Outcome, ServingReport, TenantReport, TraceEntry};
use crate::workload::{ClientGen, LoadModel, TenantSpec};

/// `x > 0` with NaN rejected (a plain `>` comparison would accept NaN
/// through the negation).
fn positive(x: f64) -> bool {
    matches!(x.partial_cmp(&0.0), Some(std::cmp::Ordering::Greater))
}

/// `x >= 0` with NaN rejected.
fn non_negative(x: f64) -> bool {
    matches!(
        x.partial_cmp(&0.0),
        Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
    )
}

/// A complete serving scenario: who the tenants are and how the server
/// queues, sheds, and batches their requests.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Seed for every client generator (replays are byte-identical for
    /// equal seeds).
    pub seed: u64,
    /// The tenant population.
    pub tenants: Vec<TenantSpec>,
    /// Request-selection policy.
    pub policy: FairnessPolicy,
    /// Admission queue depth cap: arrivals beyond it are rejected.
    pub queue_cap: usize,
    /// Maximum tenant requests dispatched per batch round.
    pub batch_window: usize,
    /// Device tagged-command-queue depth for
    /// [`multimap_disksim::Discipline::QueuedSptf`].
    pub queue_depth: usize,
}

impl Scenario {
    fn validate(&self, mapping: &dyn Mapping) -> Result<()> {
        let fail = |msg: String| Err(ServerError::Config(msg));
        if self.tenants.is_empty() {
            return fail("scenario has no tenants".into());
        }
        if self.queue_cap == 0 {
            return fail("queue_cap must be at least 1".into());
        }
        if self.batch_window == 0 {
            return fail("batch_window must be at least 1".into());
        }
        if self.queue_depth == 0 {
            return fail("queue_depth must be at least 1".into());
        }
        let ndims = mapping.grid().ndims();
        for (i, t) in self.tenants.iter().enumerate() {
            if t.dim >= ndims {
                return fail(format!(
                    "tenant {i} ({}) beams along dim {} but the grid has {ndims} dims",
                    t.name, t.dim
                ));
            }
            if !positive(t.weight) {
                return fail(format!("tenant {i} ({}) weight must be positive", t.name));
            }
            if !positive(t.deadline_ms) {
                return fail(format!("tenant {i} ({}) deadline must be positive", t.name));
            }
            match t.load {
                LoadModel::OpenLoop { rate_rps } if !positive(rate_rps) => {
                    return fail(format!("tenant {i} ({}) rate_rps must be positive", t.name));
                }
                LoadModel::ClosedLoop { think_ms } if !non_negative(think_ms) => {
                    return fail(format!("tenant {i} ({}) think_ms must be non-negative", t.name));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// Mutable loop state, split out so the borrow checker can see that
/// admission touches clients/queue/reports while dispatch touches the
/// volume.
struct LoopState {
    clients: Vec<ClientGen>,
    reports: Vec<TenantReport>,
    pending: Vec<Queued>,
    credits: Vec<f64>,
    weights: Vec<f64>,
    trace: Vec<TraceEntry>,
    dispatched: Vec<(usize, usize)>,
    digest: u64,
    admit_seq: u64,
    queue_cap: usize,
}

impl LoopState {
    /// Record a request's fate and (for closed-loop tenants) unblock
    /// the next request.
    fn resolve(&mut self, tenant: usize, seq: usize, outcome: Outcome, at_ms: f64) {
        let entry = TraceEntry {
            tenant,
            seq,
            outcome,
            resolve_ms: at_ms,
        };
        self.digest = fold_digest(self.digest, &entry);
        self.trace.push(entry);
        self.clients[tenant].resolve(at_ms);
    }

    /// Admit every schedulable arrival at or before `threshold`:
    /// reject past the queue cap, shed already-expired requests, queue
    /// the rest. `now` is the current device clock (admission decisions
    /// happen at server time, which may be later than the arrival).
    fn admit_arrivals(&mut self, threshold: f64, now: f64) {
        loop {
            // Earliest schedulable arrival, ties to the lowest tenant.
            let mut next: Option<(usize, f64)> = None;
            for (t, c) in self.clients.iter().enumerate() {
                if let Some(a) = c.peek_arrival() {
                    let earlier = match next {
                        None => true,
                        Some((_, best)) => a.total_cmp(&best).is_lt(),
                    };
                    if earlier {
                        next = Some((t, a));
                    }
                }
            }
            let Some((tenant, arrival)) = next else { break };
            if arrival.total_cmp(&threshold).is_gt() {
                break;
            }
            let req = self.clients[tenant].emit();
            self.reports[tenant].submitted += 1;
            // The server examines this arrival no earlier than both its
            // arrival time and the current clock.
            let seen = now.max(arrival);
            if self.pending.len() >= self.queue_cap {
                self.reports[tenant].rejected_queue_full += 1;
                self.resolve(tenant, req.seq, Outcome::RejectedQueueFull, seen);
            } else if seen > req.deadline_ms {
                self.reports[tenant].shed_deadline += 1;
                self.resolve(tenant, req.seq, Outcome::ShedDeadline, seen);
            } else {
                self.reports[tenant].admitted += 1;
                self.pending.push(Queued {
                    req,
                    admit_seq: self.admit_seq,
                });
                self.admit_seq += 1;
            }
        }
    }

    /// Drop queued requests whose deadline passed before dispatch.
    fn shed_expired(&mut self, now: f64) {
        let drained = std::mem::take(&mut self.pending);
        let mut kept = Vec::with_capacity(drained.len());
        for q in drained {
            if now > q.req.deadline_ms {
                self.reports[q.req.tenant].shed_deadline += 1;
                self.resolve(q.req.tenant, q.req.seq, Outcome::ShedDeadline, now);
            } else {
                kept.push(q);
            }
        }
        self.pending = kept;
    }

    /// Earliest future arrival across all clients, if any.
    fn next_arrival(&self) -> Option<f64> {
        let mut best: Option<f64> = None;
        for c in &self.clients {
            if let Some(a) = c.peek_arrival() {
                best = Some(match best {
                    None => a,
                    Some(b) => {
                        if a.total_cmp(&b).is_lt() {
                            a
                        } else {
                            b
                        }
                    }
                });
            }
        }
        best
    }
}

/// Serve `scenario` against `mapping` on device 0 of `volume`,
/// returning the per-tenant SLO report.
///
/// The volume is used as-is (its clock keeps advancing from wherever
/// it stands); for reproducible runs hand in a freshly built volume.
pub fn serve_scenario<D: DeviceModel>(
    volume: &DeviceVolume<D>,
    mapping: &dyn Mapping,
    scenario: &Scenario,
) -> Result<ServingReport> {
    scenario.validate(mapping)?;
    let grid = mapping.grid().clone();
    let n = scenario.tenants.len();
    let mut state = LoopState {
        clients: scenario
            .tenants
            .iter()
            .enumerate()
            .map(|(t, spec)| ClientGen::new(spec, t, scenario.seed, &grid))
            .collect(),
        reports: scenario
            .tenants
            .iter()
            .map(|spec| TenantReport {
                name: spec.name.clone(),
                submitted: 0,
                admitted: 0,
                completed: 0,
                shed_deadline: 0,
                rejected_queue_full: 0,
                disk_requests: 0,
                latency: Histogram::new(),
                metrics: Metrics::new(),
            })
            .collect(),
        pending: Vec::new(),
        credits: vec![0.0; n],
        weights: scenario.tenants.iter().map(|t| t.weight).collect(),
        trace: Vec::new(),
        dispatched: Vec::new(),
        digest: mix64(scenario.seed),
        admit_seq: 0,
        queue_cap: scenario.queue_cap,
    };
    let mut batches = 0u64;
    let mut dispatched_requests = 0u64;

    loop {
        let now = volume.with_device(0, |d| d.now_ms())?;
        state.admit_arrivals(now, now);
        if state.pending.is_empty() {
            match state.next_arrival() {
                Some(t) => {
                    if t > now {
                        volume.idle_all(t - now);
                    }
                    // Clock floats may land a hair under `t`; admit
                    // against the target so the loop always progresses.
                    let clock = volume.with_device(0, |d| d.now_ms())?;
                    state.admit_arrivals(t.max(clock), clock.max(t));
                    continue;
                }
                None => break, // queue drained, clients exhausted
            }
        }
        state.shed_expired(now);
        if state.pending.is_empty() {
            continue;
        }
        let batch = select_batch(
            scenario.policy,
            &mut state.pending,
            scenario.batch_window,
            &mut state.credits,
            &state.weights,
        );

        // Translate each tenant request's beam into per-cell disk
        // requests, remembering which batch entry owns each one.
        let mut reqs: Vec<Request> = Vec::new();
        let mut owners: Vec<usize> = Vec::new();
        for (bi, q) in batch.iter().enumerate() {
            let region = BoxRegion::beam(&grid, q.req.dim, &q.req.anchor);
            for coord in region.cells_vec() {
                let lbn = mapping.lbn_of(&coord)?;
                reqs.push(Request::new(lbn, mapping.cell_blocks()));
                owners.push(bi);
            }
        }
        // Attribution: the device reports events by request identity,
        // so map (lbn, nblocks) back to submission indices. Identical
        // requests from different tenants are matched first-submitted
        // to first-served — deterministic, and timing-equivalent.
        let mut by_key: BTreeMap<(u64, u64), VecDeque<usize>> = BTreeMap::new();
        for (i, r) in reqs.iter().enumerate() {
            by_key.entry((r.lbn, r.nblocks)).or_default().push_back(i);
        }

        let (_, log) = volume.service_batch_logged(
            0,
            &reqs,
            SchedulePolicy::QueuedSptf(scenario.queue_depth),
        )?;
        let events = log.events();
        let transitions = volume.classify_events(0, events)?;
        let mut completion = vec![0.0f64; batch.len()];
        for (e, tr) in events.iter().zip(transitions.iter()) {
            let i = by_key
                .get_mut(&(e.request.lbn, e.request.nblocks))
                .and_then(|q| q.pop_front())
                .ok_or_else(|| {
                    ServerError::Config(format!(
                        "device reported an event for an unsubmitted request at lbn {}",
                        e.request.lbn
                    ))
                })?;
            let bi = owners[i];
            let tenant = batch[bi].req.tenant;
            record_classified_event(&mut state.reports[tenant].metrics, *tr, e);
            state.reports[tenant].disk_requests += 1;
            if e.after.time_ms > completion[bi] {
                completion[bi] = e.after.time_ms;
            }
        }
        batches += 1;
        dispatched_requests += reqs.len() as u64;

        for (bi, q) in batch.iter().enumerate() {
            let tenant = q.req.tenant;
            let done = completion[bi];
            state.reports[tenant].completed += 1;
            state
                .reports[tenant]
                .latency
                .record((done - q.req.arrival_ms).max(0.0));
            state.dispatched.push((tenant, q.req.seq));
            state.resolve(tenant, q.req.seq, Outcome::Completed, done);
        }
    }

    // Makespan: the last fate decided on the simulated clock.
    let makespan_ms = state
        .trace
        .iter()
        .map(|e| e.resolve_ms)
        .fold(0.0f64, f64::max);
    Ok(ServingReport {
        backend: volume.backend_name().to_string(),
        mapping: mapping.name().to_string(),
        policy: scenario.policy.slug().to_string(),
        tenants: state.reports,
        batches,
        dispatched_requests,
        makespan_ms,
        trace: state.trace,
        dispatched: state.dispatched,
        digest: state.digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_core::{GridSpec, MultiMapping, NaiveMapping};
    use multimap_disksim::{profiles, DiskSim};
    use multimap_telemetry::Counter;
    use crate::workload::TenantSpec;

    fn small_grid() -> GridSpec {
        GridSpec::new([24u64, 12, 8])
    }

    fn scenario(policy: FairnessPolicy) -> Scenario {
        Scenario {
            seed: 0xC0FFEE,
            tenants: vec![
                TenantSpec {
                    name: "open-a".into(),
                    weight: 2.0,
                    load: LoadModel::OpenLoop { rate_rps: 40.0 },
                    requests: 30,
                    deadline_ms: 400.0,
                    dim: 1,
                },
                TenantSpec {
                    name: "closed-b".into(),
                    weight: 1.0,
                    load: LoadModel::ClosedLoop { think_ms: 5.0 },
                    requests: 30,
                    deadline_ms: 400.0,
                    dim: 2,
                },
                TenantSpec {
                    name: "open-c".into(),
                    weight: 1.0,
                    load: LoadModel::OpenLoop { rate_rps: 25.0 },
                    requests: 20,
                    deadline_ms: 60.0,
                    dim: 1,
                },
            ],
            policy,
            queue_cap: 32,
            batch_window: 6,
            queue_depth: 32,
        }
    }

    fn volume() -> DeviceVolume<DiskSim> {
        DeviceVolume::new(vec![DiskSim::new(profiles::small())]).unwrap()
    }

    fn mapping() -> MultiMapping {
        MultiMapping::new(&profiles::small(), small_grid()).unwrap()
    }

    #[test]
    fn counters_reconcile_for_every_policy() {
        for policy in [
            FairnessPolicy::Fifo,
            FairnessPolicy::EarliestDeadline,
            FairnessPolicy::WeightedTenant,
        ] {
            let v = volume();
            let m = mapping();
            let s = scenario(policy);
            let report = serve_scenario(&v, &m, &s).unwrap();
            let mut total_disk = 0;
            for (t, spec) in report.tenants.iter().zip(s.tenants.iter()) {
                assert_eq!(t.submitted, spec.requests as u64, "every request submitted");
                assert_eq!(
                    t.submitted,
                    t.completed + t.shed_deadline + t.rejected_queue_full,
                    "{policy:?} {}: fate partition",
                    t.name
                );
                assert_eq!(t.latency.count(), t.completed, "one latency per completion");
                assert_eq!(
                    t.metrics.counter_value(Counter::RequestsServiced),
                    t.disk_requests,
                    "telemetry matches dispatched disk requests"
                );
                total_disk += t.disk_requests;
            }
            assert_eq!(total_disk, report.dispatched_requests);
            assert_eq!(
                v.stats(0).unwrap().requests,
                report.dispatched_requests,
                "device saw exactly the dispatched requests"
            );
            assert_eq!(
                report.trace.len() as u64,
                report.tenants.iter().map(|t| t.submitted).sum::<u64>(),
                "every submission resolves exactly once"
            );
        }
    }

    #[test]
    fn shed_requests_never_reach_the_device() {
        // A hopeless deadline forces mass shedding.
        let mut s = scenario(FairnessPolicy::EarliestDeadline);
        s.tenants[2].deadline_ms = 0.001;
        let v = volume();
        let m = mapping();
        let report = serve_scenario(&v, &m, &s).unwrap();
        let shed: Vec<(usize, usize)> = report
            .trace
            .iter()
            .filter(|e| e.outcome != Outcome::Completed)
            .map(|e| (e.tenant, e.seq))
            .collect();
        assert!(!shed.is_empty(), "scenario must actually shed");
        for id in &shed {
            assert!(!report.dispatched.contains(id), "{id:?} shed yet dispatched");
        }
    }

    #[test]
    fn replays_are_byte_identical() {
        let s = scenario(FairnessPolicy::WeightedTenant);
        let run = || {
            let v = volume();
            let m = mapping();
            serve_scenario(&v, &m, &s).unwrap()
        };
        let a = run();
        let b = run();
        assert!(a.identical(&b));
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn naive_mapping_serves_the_same_population() {
        let v = volume();
        let m = NaiveMapping::new(small_grid(), 0);
        let report = serve_scenario(&v, &m, &scenario(FairnessPolicy::Fifo)).unwrap();
        assert_eq!(report.mapping, "Naive");
        assert!(report.dispatched_requests > 0);
    }

    #[test]
    fn malformed_scenarios_are_typed_errors() {
        let v = volume();
        let m = mapping();
        let mut s = scenario(FairnessPolicy::Fifo);
        s.tenants.clear();
        assert!(matches!(
            serve_scenario(&v, &m, &s),
            Err(ServerError::Config(_))
        ));
        let mut s = scenario(FairnessPolicy::Fifo);
        s.tenants[0].dim = 9;
        assert!(matches!(
            serve_scenario(&v, &m, &s),
            Err(ServerError::Config(_))
        ));
        let mut s = scenario(FairnessPolicy::Fifo);
        s.batch_window = 0;
        assert!(matches!(
            serve_scenario(&v, &m, &s),
            Err(ServerError::Config(_))
        ));
    }
}
