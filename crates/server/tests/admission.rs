//! Property tests for admission control: whatever the load, deadlines,
//! queue cap, or policy, a shed or rejected request must never appear
//! in any served batch, every submission resolves exactly once, and
//! the admission counters partition exactly.

use std::collections::BTreeSet;

use multimap_core::{GridSpec, MultiMapping};
use multimap_disksim::{profiles, DiskSim};
use multimap_lvm::DeviceVolume;
use multimap_server::{
    serve_scenario, FairnessPolicy, LoadModel, Outcome, Scenario, TenantSpec,
};
use proptest::prelude::*;

fn policy_strategy() -> impl Strategy<Value = FairnessPolicy> {
    (0usize..3).prop_map(|i| {
        [
            FairnessPolicy::Fifo,
            FairnessPolicy::EarliestDeadline,
            FairnessPolicy::WeightedTenant,
        ][i]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn shed_requests_never_appear_in_any_served_batch(
        seed in 0u64..=u64::MAX,
        policy in policy_strategy(),
        queue_cap in 1usize..10,
        batch_window in 1usize..6,
        // Deadlines short enough to shed under pressure, long enough
        // that some requests complete.
        deadline_ms in 0.5f64..40.0,
        rate_rps in 10.0f64..150.0,
        think_ms in 0.5f64..10.0,
    ) {
        let grid = GridSpec::new([16u64, 8, 6]);
        let geom = profiles::small();
        let scenario = Scenario {
            seed,
            tenants: vec![
                TenantSpec {
                    name: "open-0".into(),
                    weight: 2.0,
                    load: LoadModel::OpenLoop { rate_rps },
                    requests: 12,
                    deadline_ms,
                    dim: 0,
                },
                TenantSpec {
                    name: "closed-1".into(),
                    weight: 1.0,
                    load: LoadModel::ClosedLoop { think_ms },
                    requests: 12,
                    deadline_ms: deadline_ms * 4.0,
                    dim: 1,
                },
                TenantSpec {
                    name: "open-2".into(),
                    weight: 1.5,
                    load: LoadModel::OpenLoop { rate_rps: rate_rps * 0.6 },
                    requests: 12,
                    deadline_ms,
                    dim: 2,
                },
            ],
            policy,
            queue_cap,
            batch_window,
            queue_depth: 16,
        };
        let volume = DeviceVolume::new(vec![DiskSim::new(geom.clone())]).unwrap();
        let mapping = MultiMapping::new(&geom, grid).unwrap();
        let report = serve_scenario(&volume, &mapping, &scenario).unwrap();

        // Every dispatched id is unique: nothing is served twice.
        let served: Vec<(usize, usize)> = report.dispatched.clone();
        let served_set: BTreeSet<(usize, usize)> = served.iter().copied().collect();
        prop_assert_eq!(served.len(), served_set.len(), "a request was dispatched twice");

        // Shed/rejected requests never reach the device.
        let mut resolved = BTreeSet::new();
        for e in &report.trace {
            prop_assert!(resolved.insert((e.tenant, e.seq)), "request resolved twice");
            if e.outcome != Outcome::Completed {
                prop_assert!(
                    !served_set.contains(&(e.tenant, e.seq)),
                    "{:?} request ({}, {}) appeared in a served batch",
                    e.outcome, e.tenant, e.seq
                );
            } else {
                prop_assert!(
                    served_set.contains(&(e.tenant, e.seq)),
                    "completed request ({}, {}) missing from dispatch log",
                    e.tenant, e.seq
                );
            }
        }

        // Counters partition exactly, and every submission resolved.
        for (t, spec) in report.tenants.iter().zip(scenario.tenants.iter()) {
            prop_assert_eq!(t.submitted, spec.requests as u64);
            prop_assert_eq!(
                t.submitted,
                t.completed + t.shed_deadline + t.rejected_queue_full
            );
            prop_assert_eq!(t.latency.count(), t.completed);
        }
        prop_assert_eq!(resolved.len(), 36, "3 tenants x 12 requests all resolved");
        prop_assert_eq!(
            volume.stats(0).unwrap().requests,
            report.dispatched_requests,
            "device requests match the dispatch log"
        );
    }
}
