//! Determinism pins for the serving layer: a sweep of serving
//! scenarios fanned across `multimap-engine` workers must produce
//! byte-identical tenant traces and bit-identical merged per-tenant
//! histograms at 1, 2, 4, and 8 threads.

use multimap_core::{GridSpec, Mapping, MultiMapping, NaiveMapping};
use multimap_disksim::{profiles, DiskSim};
use multimap_lvm::DeviceVolume;
use multimap_server::{
    serve_scenario, FairnessPolicy, LoadModel, Scenario, ServingReport, TenantSpec,
};

fn grid() -> GridSpec {
    GridSpec::new([24u64, 12, 8])
}

fn tenant(i: usize, load: LoadModel, deadline_ms: f64) -> TenantSpec {
    TenantSpec {
        name: format!("t{i}"),
        weight: 1.0 + (i % 3) as f64,
        load,
        requests: 24,
        deadline_ms,
        dim: i % 3,
    }
}

/// Six scenario cells covering every policy, both load models, a tight
/// deadline (forcing sheds), and a tight queue cap (forcing rejects).
fn cells() -> Vec<(Scenario, bool)> {
    let mut out = Vec::new();
    for (i, policy) in [
        FairnessPolicy::Fifo,
        FairnessPolicy::EarliestDeadline,
        FairnessPolicy::WeightedTenant,
    ]
    .iter()
    .enumerate()
    {
        for &(multimap, deadline, cap) in
            &[(true, 300.0, 48), (false, 40.0, 6)]
        {
            out.push((
                Scenario {
                    seed: 0xFEED + i as u64,
                    tenants: vec![
                        tenant(0, LoadModel::OpenLoop { rate_rps: 60.0 }, deadline),
                        tenant(1, LoadModel::ClosedLoop { think_ms: 4.0 }, deadline),
                        tenant(2, LoadModel::OpenLoop { rate_rps: 35.0 }, deadline),
                        tenant(3, LoadModel::ClosedLoop { think_ms: 9.0 }, deadline),
                    ],
                    policy: *policy,
                    queue_cap: cap,
                    batch_window: 5,
                    queue_depth: 24,
                },
                multimap,
            ));
        }
    }
    out
}

fn run_cells() -> Vec<ServingReport> {
    let cells = cells();
    multimap_engine::sweep(&cells, |(scenario, multimap)| {
        let geom = profiles::small();
        let volume = DeviceVolume::new(vec![DiskSim::new(geom.clone())]).unwrap();
        let mapping: Box<dyn Mapping> = if *multimap {
            Box::new(MultiMapping::new(&geom, grid()).unwrap())
        } else {
            Box::new(NaiveMapping::new(grid(), 0))
        };
        serve_scenario(&volume, mapping.as_ref(), scenario).unwrap()
    })
}

#[test]
fn serving_sweep_replays_byte_identically_at_1_2_4_8_threads() {
    multimap_engine::set_threads(1);
    let serial = run_cells();
    // Sanity: the cells exercise real sheds and rejects, not just
    // happy-path completions.
    let sheds: u64 = serial
        .iter()
        .flat_map(|r| r.tenants.iter())
        .map(|t| t.shed_deadline)
        .sum();
    let rejects: u64 = serial
        .iter()
        .flat_map(|r| r.tenants.iter())
        .map(|t| t.rejected_queue_full)
        .sum();
    assert!(sheds > 0, "pins must cover deadline shedding");
    assert!(rejects > 0, "pins must cover queue-cap rejection");

    for threads in [2usize, 4, 8] {
        multimap_engine::set_threads(threads);
        let parallel = run_cells();
        assert_eq!(serial.len(), parallel.len());
        for (i, (a, b)) in serial.iter().zip(parallel.iter()).enumerate() {
            // Identical tenant traces...
            assert_eq!(a.trace, b.trace, "cell {i} trace diverged at {threads} threads");
            // ...identical merged per-tenant histograms...
            assert!(
                a.merged_latency().identical(&b.merged_latency()),
                "cell {i} merged histogram diverged at {threads} threads"
            );
            // ...and the full bit-equality witness + JSON bytes.
            assert!(a.identical(b), "cell {i} report diverged at {threads} threads");
            assert_eq!(a.to_json(), b.to_json());
        }
    }
    multimap_engine::set_threads(0);
}
