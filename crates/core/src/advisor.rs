//! Mapping selection advice (Sections 4.4–4.5).
//!
//! MultiMap is not always the right layout: if every dimension of the
//! dataset is much shorter than the track, packing wastes up to half of
//! each track, and "if space is at a premium and datasets do not favor
//! MultiMap, a system can simply revert to linear mappings". This module
//! encodes that decision.

use multimap_disksim::DiskGeometry;

use crate::grid::GridSpec;
use crate::mapping::{Mapping, Result};
use crate::multimap::{max_dimensions, MultiMapping};
use crate::naive::NaiveMapping;

/// Why the advisor picked (or rejected) MultiMap.
#[derive(Clone, Debug, PartialEq)]
pub enum Advice {
    /// MultiMap fits and its space utilization clears the budget.
    UseMultiMap {
        /// Fraction of the spanned blocks holding data.
        utilization: f64,
    },
    /// MultiMap is infeasible or too wasteful; use a linear mapping.
    UseLinear {
        /// Human-readable reason.
        reason: String,
    },
}

/// Tunables for [`advise`].
#[derive(Clone, Copy, Debug)]
pub struct AdvisorConfig {
    /// Minimum acceptable space utilization for MultiMap, in `(0, 1]`.
    pub min_utilization: f64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            min_utilization: 0.5,
        }
    }
}

/// Decide whether `grid` should be MultiMapped onto `geom`.
pub fn advise(geom: &DiskGeometry, grid: &GridSpec, config: &AdvisorConfig) -> Advice {
    if grid.ndims() as u32 > max_dimensions(geom.adjacency_limit as u64) {
        return Advice::UseLinear {
            reason: format!(
                "{} dimensions exceed N_max = {} for D = {}",
                grid.ndims(),
                max_dimensions(geom.adjacency_limit as u64),
                geom.adjacency_limit
            ),
        };
    }
    match MultiMapping::new(geom, grid.clone()) {
        Err(e) => Advice::UseLinear {
            reason: format!("MultiMap layout failed: {e}"),
        },
        Ok(m) => {
            let utilization = m.space_utilization();
            if utilization < config.min_utilization {
                Advice::UseLinear {
                    reason: format!(
                        "utilization {utilization:.2} below budget {:.2}",
                        config.min_utilization
                    ),
                }
            } else {
                Advice::UseMultiMap { utilization }
            }
        }
    }
}

/// Build the advised mapping: MultiMap when it clears the space budget,
/// the naive row-major layout (at `base_lbn`) otherwise.
pub fn build_advised(
    geom: &DiskGeometry,
    grid: &GridSpec,
    base_lbn: u64,
    config: &AdvisorConfig,
) -> Result<Box<dyn Mapping>> {
    match advise(geom, grid, config) {
        Advice::UseMultiMap { .. } => {
            Ok(Box::new(MultiMapping::new(geom, grid.clone())?) as Box<dyn Mapping>)
        }
        Advice::UseLinear { .. } => Ok(Box::new(NaiveMapping::new(grid.clone(), base_lbn))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingKind;
    use multimap_disksim::profiles;

    #[test]
    fn well_shaped_dataset_gets_multimap() {
        let geom = profiles::small();
        // Dim0 spans most of the track: good utilization.
        let grid = GridSpec::new([110u64, 8, 4]);
        match advise(&geom, &grid, &AdvisorConfig::default()) {
            Advice::UseMultiMap { utilization } => assert!(utilization >= 0.5),
            other => panic!("expected MultiMap, got {other:?}"),
        }
        let m = build_advised(&geom, &grid, 0, &AdvisorConfig::default()).unwrap();
        assert_eq!(m.kind(), MappingKind::MultiMap);
    }

    #[test]
    fn short_dim0_wastes_tracks_and_falls_back() {
        let geom = profiles::small(); // T = 120
                                      // Dim0 = 70: one cube per 120-sector track, 42% waste.
        let grid = GridSpec::new([70u64, 8, 4]);
        let cfg = AdvisorConfig {
            min_utilization: 0.8,
        };
        match advise(&geom, &grid, &cfg) {
            Advice::UseLinear { reason } => assert!(reason.contains("utilization")),
            other => panic!("expected linear fallback, got {other:?}"),
        }
        let m = build_advised(&geom, &grid, 0, &cfg).unwrap();
        assert_eq!(m.kind(), MappingKind::Naive);
    }

    #[test]
    fn too_many_dimensions_fall_back() {
        let geom = profiles::toy(); // D = 9 -> N_max = 5
        let grid = GridSpec::new([2u64, 2, 2, 2, 2, 2]);
        match advise(&geom, &grid, &AdvisorConfig::default()) {
            Advice::UseLinear { reason } => assert!(reason.contains("N_max")),
            other => panic!("expected linear fallback, got {other:?}"),
        }
    }

    #[test]
    fn oversized_dataset_falls_back() {
        let geom = profiles::toy();
        let grid = GridSpec::new([5u64, 3, 5000]);
        match advise(&geom, &grid, &AdvisorConfig::default()) {
            Advice::UseLinear { reason } => assert!(reason.contains("failed")),
            other => panic!("expected linear fallback, got {other:?}"),
        }
    }
}
