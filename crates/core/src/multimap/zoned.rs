//! Per-zone cube shapes (Section 4.4): "A large dataset can be mapped
//! to basic cubes of different sizes in different zones."
//!
//! A single cube shape must use the *smallest* track length of the zones
//! it touches as `K0`, wasting track space in the faster outer zones.
//! [`ZonedMultiMapping`] instead splits the dataset along its last
//! dimension into one segment per zone and places each segment with a
//! shape chosen for that zone alone, so every zone's full track length
//! is exploited.

use multimap_disksim::{DiskGeometry, Lbn};

use crate::grid::{Coord, GridSpec};
use crate::mapping::{Mapping, MappingError, MappingKind, Result};
use crate::multimap::map::{MultiMapOptions, MultiMapping};

/// One per-zone segment of the dataset.
struct Segment {
    /// First coordinate along the split (last) dimension.
    start: u64,
    /// The segment's mapping (confined to one zone).
    mapping: MultiMapping,
}

/// MultiMap with per-zone basic-cube shapes.
pub struct ZonedMultiMapping {
    grid: GridSpec,
    /// Segments ordered by `start`.
    segments: Vec<Segment>,
}

impl ZonedMultiMapping {
    /// Place `grid` on `geom`, splitting along the last dimension with a
    /// per-zone shape. Fails if the dataset does not fit the disk.
    pub fn new(geom: &DiskGeometry, grid: GridSpec) -> Result<Self> {
        let n = grid.ndims();
        let last = n - 1;
        let total = grid.extent(last);
        let mut segments: Vec<Segment> = Vec::new();
        let mut start = 0u64;
        for zone in 0..geom.zones().len() {
            if start >= total {
                break;
            }
            // Largest segment length this zone can hold, by binary search
            // over the last-dimension extent.
            let (mut lo, mut hi) = (0u64, total - start);
            while lo < hi {
                let mid = (lo + hi).div_ceil(2);
                if Self::try_segment(geom, &grid, zone, start, mid).is_ok() {
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            if lo == 0 {
                continue; // Zone too small for even one layer.
            }
            let mapping = Self::try_segment(geom, &grid, zone, start, lo)
                // staticcheck: allow(no-unwrap) — the preceding binary search proved try_segment succeeds at lo.
                .expect("binary search verified this length");
            segments.push(Segment { start, mapping });
            start += lo;
        }
        if start < total {
            return Err(MappingError::DoesNotFit {
                reason: format!(
                    "zoned layout covers only {start} of {total} layers along the last dimension"
                ),
            });
        }
        Ok(ZonedMultiMapping { grid, segments })
    }

    /// Build the mapping of one candidate segment, confined to `zone`.
    fn try_segment(
        geom: &DiskGeometry,
        grid: &GridSpec,
        zone: usize,
        _start: u64,
        len: u64,
    ) -> Result<MultiMapping> {
        let mut extents = grid.extents().to_vec();
        let last = extents.len() - 1;
        extents[last] = len;
        MultiMapping::with_options(
            geom,
            GridSpec::new(extents),
            MultiMapOptions {
                first_zone: zone,
                shape_override: None,
                zone_limit: Some(1),
            },
        )
    }

    /// Number of per-zone segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The basic-cube shapes in use, one per segment.
    pub fn shapes(&self) -> Vec<&[u64]> {
        self.segments
            .iter()
            .map(|s| s.mapping.shape().k.as_slice())
            .collect()
    }

    /// The segment owning a last-dimension coordinate.
    fn segment_of(&self, last_coord: u64) -> &Segment {
        let idx = self
            .segments
            .partition_point(|s| s.start <= last_coord)
            .saturating_sub(1);
        &self.segments[idx]
    }
}

impl Mapping for ZonedMultiMapping {
    fn name(&self) -> &str {
        "MultiMap-zoned"
    }

    fn kind(&self) -> MappingKind {
        MappingKind::MultiMap
    }

    fn grid(&self) -> &GridSpec {
        &self.grid
    }

    fn lbn_of(&self, coord: &[u64]) -> Result<Lbn> {
        if !self.grid.contains(coord) {
            return Err(MappingError::CoordOutOfGrid {
                coord: coord.to_vec(),
            });
        }
        let last = coord.len() - 1;
        let seg = self.segment_of(coord[last]);
        let mut local = coord.to_vec();
        local[last] -= seg.start;
        seg.mapping.lbn_of(&local)
    }

    fn coord_of(&self, lbn: Lbn) -> Option<Coord> {
        // Segments own disjoint zones, so at most one can decode the LBN.
        for seg in &self.segments {
            if let Some(mut c) = seg.mapping.coord_of(lbn) {
                let last = c.len() - 1;
                c[last] += seg.start;
                return Some(c);
            }
        }
        None
    }

    fn blocks_spanned(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| s.mapping.blocks_spanned())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_disksim::profiles;
    use std::collections::HashSet;

    #[test]
    fn zoned_mapping_is_injective_and_invertible() {
        let geom = profiles::small(); // zones T=120 and T=100
                                      // Large enough along the last dimension to spill into zone 1.
        let grid = GridSpec::new([120u64, 8, 400]);
        let m = ZonedMultiMapping::new(&geom, grid.clone()).unwrap();
        assert!(m.segment_count() >= 2, "should span both zones");
        let mut seen = HashSet::new();
        grid.for_each_cell(|c| {
            let l = m.lbn_of(c).unwrap();
            assert!(seen.insert(l), "collision at {c:?}");
            assert_eq!(m.coord_of(l).unwrap(), c.to_vec(), "inverse at {c:?}");
        });
    }

    #[test]
    fn per_zone_k0_follows_the_zone_track_length() {
        let geom = profiles::small();
        // Dim0 larger than the inner zone's track: the outer segment can
        // use K0 = 120, the inner only 100.
        let grid = GridSpec::new([120u64, 8, 400]);
        let m = ZonedMultiMapping::new(&geom, grid).unwrap();
        let shapes = m.shapes();
        assert_eq!(shapes[0][0], 120, "outer zone uses its full track");
        assert_eq!(
            shapes.last().unwrap()[0],
            100,
            "inner zone is capped by its shorter track"
        );
    }

    #[test]
    fn zoned_beats_single_shape_utilization_across_zones() {
        let geom = profiles::small();
        let grid = GridSpec::new([120u64, 8, 400]);
        let zoned = ZonedMultiMapping::new(&geom, grid.clone()).unwrap();
        // The single-shape mapping must cap K0 at the *minimum* track
        // length it touches; zoned exploits each zone fully.
        let single = MultiMapping::new(&geom, grid).unwrap();
        assert!(
            zoned.space_utilization() >= single.space_utilization() - 1e-9,
            "zoned {:.3} vs single {:.3}",
            zoned.space_utilization(),
            single.space_utilization()
        );
    }

    #[test]
    fn too_large_dataset_is_rejected() {
        let geom = profiles::toy();
        let grid = GridSpec::new([5u64, 3, 100_000]);
        assert!(matches!(
            ZonedMultiMapping::new(&geom, grid),
            Err(MappingError::DoesNotFit { .. })
        ));
    }

    #[test]
    fn dim0_still_streams_within_each_segment() {
        let geom = profiles::small();
        let grid = GridSpec::new([100u64, 8, 30]);
        let m = ZonedMultiMapping::new(&geom, grid).unwrap();
        let base = m.lbn_of(&[0, 0, 0]).unwrap();
        for x in 1..100u64 {
            assert_eq!(m.lbn_of(&[x, 0, 0]).unwrap(), base + x);
        }
    }
}
