//! Allocation of basic cubes onto disk zones (Section 4.4).
//!
//! Basic cubes are the allocation unit. Within a zone, `⌊T / K0⌋` cubes
//! sit side by side along each *cube row* (a band of `∏_{i≥1} K_i`
//! consecutive tracks); rows are stacked until the zone runs out of
//! tracks. Cubes never span a zone boundary.

use multimap_disksim::{DiskGeometry, Lbn};

use crate::mapping::{MappingError, Result};
use crate::multimap::shape::BasicCubeShape;

/// Cube capacity carved out of one zone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZoneAlloc {
    /// Index into the disk's zone table.
    pub zone_index: usize,
    /// Cubes that fit side by side along one track (`⌊T / K0⌋`).
    pub cubes_per_row: u64,
    /// Cube rows stacked in the zone (`⌊tracks / tracks_per_cube⌋`).
    pub rows: u64,
    /// Total cube slots in this zone.
    pub capacity: u64,
    /// Global slot index of this zone's first cube.
    pub first_slot: u64,
}

/// Physical placement of one cube slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotPlacement {
    /// Index into the disk's zone table.
    pub zone_index: usize,
    /// Global track index of the cube's first track.
    pub base_track: u64,
    /// Sector (within that track) of the cube's first cell.
    pub base_sector: u32,
}

/// The complete cube-slot layout of a mapping on one disk.
#[derive(Clone, Debug)]
pub struct CubeLayout {
    tracks_per_cube: u64,
    k0: u64,
    zones: Vec<ZoneAlloc>,
    total_slots: u64,
}

impl CubeLayout {
    /// Lay out `total_slots` cubes of `shape` onto `geom`, starting from
    /// zone `first_zone`. Zones too small for even one cube row are
    /// skipped; fails if the disk runs out of zones.
    pub fn new(
        geom: &DiskGeometry,
        shape: &BasicCubeShape,
        total_slots: u64,
        first_zone: usize,
    ) -> Result<Self> {
        Self::with_zone_limit(geom, shape, total_slots, first_zone, None)
    }

    /// [`Self::new`] restricted to at most `zone_limit` zones starting at
    /// `first_zone` (used for per-zone cube shaping, Section 4.4).
    pub fn with_zone_limit(
        geom: &DiskGeometry,
        shape: &BasicCubeShape,
        total_slots: u64,
        first_zone: usize,
        zone_limit: Option<usize>,
    ) -> Result<Self> {
        let tracks_per_cube = shape.tracks_per_cube();
        let k0 = shape.k[0];
        let mut zones = Vec::new();
        let mut allocated = 0u64;
        let end_zone = zone_limit
            .map(|l| (first_zone + l).min(geom.zones().len()))
            .unwrap_or(geom.zones().len());
        for zone in geom.zones()[..end_zone].iter().skip(first_zone) {
            if allocated >= total_slots {
                break;
            }
            let track_cells = zone.sectors_per_track as u64;
            if k0 > track_cells {
                continue;
            }
            let cubes_per_row = track_cells / k0;
            let rows = zone.tracks(geom.surfaces) / tracks_per_cube;
            let capacity = cubes_per_row * rows;
            if capacity == 0 {
                continue;
            }
            zones.push(ZoneAlloc {
                zone_index: zone.index,
                cubes_per_row,
                rows,
                capacity,
                first_slot: allocated,
            });
            allocated += capacity;
        }
        if allocated < total_slots {
            return Err(MappingError::DoesNotFit {
                reason: format!("need {total_slots} basic cubes but disk holds only {allocated}"),
            });
        }
        Ok(CubeLayout {
            tracks_per_cube,
            k0,
            zones,
            total_slots,
        })
    }

    /// Tracks each cube occupies.
    #[inline]
    pub fn tracks_per_cube(&self) -> u64 {
        self.tracks_per_cube
    }

    /// Number of cube slots laid out.
    #[inline]
    pub fn total_slots(&self) -> u64 {
        self.total_slots
    }

    /// Zone allocations in use.
    #[inline]
    pub fn zones(&self) -> &[ZoneAlloc] {
        &self.zones
    }

    /// Resolve a cube slot to its physical placement.
    pub fn place(&self, geom: &DiskGeometry, slot: u64) -> SlotPlacement {
        debug_assert!(slot < self.total_slots);
        let zi = self
            .zones
            .partition_point(|z| z.first_slot + z.capacity <= slot)
            .min(self.zones.len() - 1);
        let za = &self.zones[zi];
        let rel = slot - za.first_slot;
        let row = rel / za.cubes_per_row;
        let pos = rel % za.cubes_per_row;
        let zone = &geom.zones()[za.zone_index];
        SlotPlacement {
            zone_index: za.zone_index,
            base_track: zone.first_track + row * self.tracks_per_cube,
            base_sector: (pos * self.k0) as u32,
        }
    }

    /// Inverse of [`Self::place`] in track space: which slot (and which
    /// in-row cube) owns the given global track, if any.
    pub fn slot_of_track(
        &self,
        geom: &DiskGeometry,
        zone_index: usize,
        track: u64,
    ) -> Option<(u64, u64, u64)> {
        let za = self.zones.iter().find(|z| z.zone_index == zone_index)?;
        let zone = &geom.zones()[zone_index];
        let rel_track = track.checked_sub(zone.first_track)?;
        let row = rel_track / self.tracks_per_cube;
        if row >= za.rows {
            return None; // Track tail past the last full cube row.
        }
        let within = rel_track % self.tracks_per_cube;
        // The caller still needs the in-row cube position (from the
        // sector); return (first slot of row, row-local track, row width).
        let first_slot_of_row = za.first_slot + row * za.cubes_per_row;
        Some((first_slot_of_row, within, za.cubes_per_row))
    }

    /// One past the highest LBN any laid-out slot can touch.
    pub fn end_lbn(&self, geom: &DiskGeometry) -> Lbn {
        let last = self.place(geom, self.total_slots - 1);
        let zone = &geom.zones()[last.zone_index];
        let end_track = last.base_track + self.tracks_per_cube - 1;
        let cylinder = end_track / geom.surfaces as u64;
        let surface = (end_track % geom.surfaces as u64) as u32;
        geom.lbn_of(cylinder, surface, zone.sectors_per_track - 1)
            // staticcheck: allow(no-unwrap) — end_track is derived from a placement this layout produced.
            .expect("laid-out track must exist")
            + 1
    }

    /// LBN where the layout begins (start of the first used zone).
    pub fn start_lbn(&self, geom: &DiskGeometry) -> Lbn {
        geom.zones()[self.zones[0].zone_index].first_lbn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multimap::shape::BasicCubeShape;
    use multimap_disksim::profiles;

    fn shape533() -> BasicCubeShape {
        BasicCubeShape { k: vec![5, 3, 3] }
    }

    #[test]
    fn toy_layout_counts() {
        let geom = profiles::toy(); // zone0: 40 cyl x 3 surf, T=5
        let layout = CubeLayout::new(&geom, &shape533(), 10, 0).unwrap();
        let z = &layout.zones()[0];
        assert_eq!(z.cubes_per_row, 1); // T=5, K0=5
        assert_eq!(z.rows, 120 / 9); // 120 tracks, 9 tracks/cube
        assert_eq!(layout.tracks_per_cube(), 9);
    }

    #[test]
    fn slots_place_consecutively() {
        let geom = profiles::toy();
        let layout = CubeLayout::new(&geom, &shape533(), 10, 0).unwrap();
        let p0 = layout.place(&geom, 0);
        let p1 = layout.place(&geom, 1);
        assert_eq!(p0.base_track, 0);
        assert_eq!(p0.base_sector, 0);
        // One cube per row on the toy disk: next slot starts 9 tracks on.
        assert_eq!(p1.base_track, 9);
    }

    #[test]
    fn side_by_side_packing() {
        let geom = profiles::small(); // T=120
        let shape = BasicCubeShape { k: vec![50, 4, 4] };
        let layout = CubeLayout::new(&geom, &shape, 5, 0).unwrap();
        assert_eq!(layout.zones()[0].cubes_per_row, 2);
        let p0 = layout.place(&geom, 0);
        let p1 = layout.place(&geom, 1);
        let p2 = layout.place(&geom, 2);
        assert_eq!((p0.base_track, p0.base_sector), (0, 0));
        assert_eq!((p1.base_track, p1.base_sector), (0, 50));
        assert_eq!((p2.base_track, p2.base_sector), (16, 0));
    }

    #[test]
    fn overflow_into_second_zone() {
        let geom = profiles::toy(); // zone0 fits 13 cubes (120/9), zone1 T=4 < K0
        let shape = shape533();
        // 13 cubes fit zone 0; the 14th needs zone 1, whose T=4 < K0=5,
        // so layout must fail.
        assert!(CubeLayout::new(&geom, &shape, 14, 0).is_err());
        assert!(CubeLayout::new(&geom, &shape, 13, 0).is_ok());
    }

    #[test]
    fn multi_zone_layout_when_k0_fits() {
        let geom = profiles::toy();
        let shape = BasicCubeShape { k: vec![4, 3, 3] };
        // zone0: cubes_per_row = 5/4 = 1, rows 13 -> 13; zone1: 4/4=1, 13.
        let layout = CubeLayout::new(&geom, &shape, 20, 0).unwrap();
        assert_eq!(layout.zones().len(), 2);
        let p = layout.place(&geom, 13);
        assert_eq!(p.zone_index, 1);
        assert_eq!(p.base_track, geom.zones()[1].first_track);
    }

    #[test]
    fn first_zone_offset_respected() {
        let geom = profiles::small();
        let shape = BasicCubeShape { k: vec![50, 4, 4] };
        let layout = CubeLayout::new(&geom, &shape, 5, 1).unwrap();
        assert_eq!(layout.zones()[0].zone_index, 1);
        assert!(layout.start_lbn(&geom) == geom.zones()[1].first_lbn);
    }

    #[test]
    fn end_lbn_past_start() {
        let geom = profiles::small();
        let shape = BasicCubeShape { k: vec![50, 4, 4] };
        let layout = CubeLayout::new(&geom, &shape, 5, 0).unwrap();
        assert!(layout.end_lbn(&geom) > layout.start_lbn(&geom));
        // 5 slots = 3 rows of 2 (last partially used): end covers row 3.
        let p_last = layout.place(&geom, 4);
        assert_eq!(p_last.base_track, 32);
    }
}
