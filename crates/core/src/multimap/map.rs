//! The MultiMap mapping itself (Sections 4.2–4.4).
//!
//! Cells inside a basic cube are placed so that
//!
//! * `Dim0` runs along the track (sequential LBNs),
//! * `Dim_i` (i ≥ 1) steps to the `∏_{j=1}^{i-1} K_j`-th adjacent block,
//!
//! and basic cubes tile the dataset grid, allocated zone by zone.
//!
//! [`MultiMapping::lbn_of`] is a closed-form `O(N)` evaluation of the
//! paper's Figure 5 algorithm; [`MultiMapping::lbn_of_iterative`] is the
//! literal Figure 5 loop over `GET_ADJACENT` calls, kept as an executable
//! specification (the two are tested to agree).

use multimap_disksim::{adjacency_offset_sectors, adjacent_lbn, DiskGeometry, Lbn};

use crate::grid::{Coord, GridSpec};
use crate::mapping::{Mapping, MappingError, MappingKind, Result};
use crate::multimap::layout::CubeLayout;
use crate::multimap::shape::{solve, BasicCubeShape, ShapeConstraints};

/// Construction options for [`MultiMapping`].
#[derive(Clone, Debug, Default)]
pub struct MultiMapOptions {
    /// First disk zone to allocate from (default 0, the outermost).
    pub first_zone: usize,
    /// Override the solver's basic-cube shape (validated against
    /// Equations 1–3).
    pub shape_override: Option<Vec<u64>>,
    /// Restrict the layout to at most this many zones from `first_zone`
    /// (per-zone shaping, Section 4.4). `None` = use whatever is needed.
    pub zone_limit: Option<usize>,
}

/// MultiMap placement of one gridded dataset on one disk.
#[derive(Clone, Debug)]
pub struct MultiMapping {
    geom: DiskGeometry,
    grid: GridSpec,
    shape: BasicCubeShape,
    cube_grid: GridSpec,
    layout: CubeLayout,
    /// Per-zone adjacency offset in sectors (indexed by zone index).
    adj_off: Vec<u64>,
}

impl MultiMapping {
    /// Map `grid` onto the disk described by `geom` with default options.
    pub fn new(geom: &DiskGeometry, grid: GridSpec) -> Result<Self> {
        Self::with_options(geom, grid, MultiMapOptions::default())
    }

    /// Map `grid` onto `geom` with explicit options.
    pub fn with_options(
        geom: &DiskGeometry,
        grid: GridSpec,
        opts: MultiMapOptions,
    ) -> Result<Self> {
        let zones = geom.zones();
        if opts.first_zone >= zones.len() {
            return Err(MappingError::DoesNotFit {
                reason: format!("first_zone {} beyond zone table", opts.first_zone),
            });
        }
        // "A system can choose the best basic cube size based on the
        // dimensions of its datasets" (Section 4.4). The first candidate
        // takes K0 from the first allocatable zone and the full zone
        // budget; if the cube-count-minimising shape does not fit the
        // eligible zones, progressively shrink K0 (widening zone
        // eligibility) and the per-cube zone budget (packing more cube
        // rows per zone) until the layout fits.
        let mut result: Option<(BasicCubeShape, GridSpec, CubeLayout)> = None;
        let mut last_err = MappingError::DoesNotFit {
            reason: "no layout attempted".into(),
        };
        if let Some(k) = opts.shape_override {
            let s = BasicCubeShape { k };
            if s.k.len() != grid.ndims() {
                return Err(MappingError::InfeasibleBasicCube {
                    reason: "shape override arity mismatch".into(),
                });
            }
            let constraints = Self::constraints_for(geom, &grid, opts.first_zone, u64::MAX, 1);
            s.validate(&constraints)?;
            let (cube_grid, layout) =
                Self::try_layout(geom, &grid, &s, opts.first_zone, opts.zone_limit)?;
            result = Some((s, cube_grid, layout));
        } else {
            // Candidate track lengths: the distinct zone track lengths
            // from the outermost eligible zone inward, then halvings.
            let mut track_candidates: Vec<u64> = zones[opts.first_zone..]
                .iter()
                .map(|z| z.sectors_per_track as u64)
                .collect();
            track_candidates.dedup();
            // staticcheck: allow(no-unwrap) — DiskGeometry validates at least one zone at build time.
            let mut t = *track_candidates.last().expect("zones non-empty") / 2;
            while t >= 8 && track_candidates.len() < 24 {
                track_candidates.push(t);
                t /= 2;
            }
            'search: for &track_cells in &track_candidates {
                for zone_div in [1u64, 2, 4, 8, 16] {
                    let constraints =
                        Self::constraints_for(geom, &grid, opts.first_zone, track_cells, zone_div);
                    let shape = match solve(grid.extents(), &constraints) {
                        Ok(s) => s,
                        Err(e) => {
                            last_err = e;
                            continue;
                        }
                    };
                    match Self::try_layout(geom, &grid, &shape, opts.first_zone, opts.zone_limit) {
                        Ok((cube_grid, layout)) => {
                            result = Some((shape, cube_grid, layout));
                            break 'search;
                        }
                        Err(e) => last_err = e,
                    }
                }
            }
        }
        let Some((shape, cube_grid, layout)) = result else {
            return Err(last_err);
        };
        let adj_off = zones
            .iter()
            .map(|z| adjacency_offset_sectors(geom, z) as u64)
            .collect();
        Ok(MultiMapping {
            geom: geom.clone(),
            grid,
            shape,
            cube_grid,
            layout,
            adj_off,
        })
    }

    /// Shape constraints for a candidate `track_cells` / zone-budget
    /// divisor, over the zones eligible for that K0.
    fn constraints_for(
        geom: &DiskGeometry,
        grid: &GridSpec,
        first_zone: usize,
        track_cells_cap: u64,
        zone_div: u64,
    ) -> ShapeConstraints {
        let zones = geom.zones();
        let track_cells = (zones[first_zone].sectors_per_track as u64).min(track_cells_cap);
        let k0 = grid.extent(0).min(track_cells);
        let zone_tracks = zones[first_zone..]
            .iter()
            .filter(|z| z.sectors_per_track as u64 >= k0)
            .map(|z| z.tracks(geom.surfaces))
            .min()
            .unwrap_or(0)
            / zone_div;
        ShapeConstraints {
            track_cells,
            adjacency: geom.adjacency_limit as u64,
            zone_tracks: zone_tracks.max(1),
        }
    }

    /// Build the cube grid and layout for a shape, or report why it does
    /// not fit.
    fn try_layout(
        geom: &DiskGeometry,
        grid: &GridSpec,
        shape: &BasicCubeShape,
        first_zone: usize,
        zone_limit: Option<usize>,
    ) -> Result<(GridSpec, CubeLayout)> {
        let cube_dims: Vec<u64> = grid
            .extents()
            .iter()
            .zip(&shape.k)
            .map(|(&s, &k)| s.div_ceil(k))
            .collect();
        let cube_grid = GridSpec::new(cube_dims);
        let layout =
            CubeLayout::with_zone_limit(geom, shape, cube_grid.cells(), first_zone, zone_limit)?;
        Ok((cube_grid, layout))
    }

    /// The basic-cube shape in use.
    #[inline]
    pub fn shape(&self) -> &BasicCubeShape {
        &self.shape
    }

    /// The grid of basic cubes tiling the dataset.
    #[inline]
    pub fn cube_grid(&self) -> &GridSpec {
        &self.cube_grid
    }

    /// The cube layout on disk.
    #[inline]
    pub fn layout(&self) -> &CubeLayout {
        &self.layout
    }

    /// The disk geometry this mapping was built for.
    #[inline]
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geom
    }

    /// Split a coordinate into (cube slot, in-cube offsets). `within`
    /// must be `coord.len()` long; avoids allocation in the hot path.
    fn decompose(&self, coord: &[u64], within: &mut [u64]) -> u64 {
        let n = coord.len();
        // Row-major cube-slot index with dimension 0 fastest, computed
        // inline to avoid materialising the cube coordinate.
        let mut slot = 0u64;
        for d in (0..n).rev() {
            slot = slot * self.cube_grid.extent(d) + coord[d] / self.shape.k[d];
            within[d] = coord[d] % self.shape.k[d];
        }
        slot
    }

    /// Literal Figure 5: start at the cube's first LBN plus `x0`, then
    /// take `x_i` successive `step(i)`-th adjacent blocks per dimension.
    pub fn lbn_of_iterative(&self, coord: &[u64]) -> Result<Lbn> {
        if !self.grid.contains(coord) {
            return Err(MappingError::CoordOutOfGrid {
                coord: coord.to_vec(),
            });
        }
        let mut buf = [0u64; 16];
        assert!(coord.len() <= 16, "MultiMap supports at most 16 dimensions");
        let within = &mut buf[..coord.len()];
        let slot = self.decompose(coord, within);
        let place = self.layout.place(&self.geom, slot);
        let surfaces = self.geom.surfaces as u64;
        let cylinder = place.base_track / surfaces;
        let surface = (place.base_track % surfaces) as u32;
        let mut lbn = self
            .geom
            .lbn_of(cylinder, surface, place.base_sector + within[0] as u32)
            // staticcheck: allow(no-unwrap) — placements come from the layout, which only uses on-disk tracks.
            .expect("cube base must be on disk");
        #[allow(clippy::needless_range_loop)] // parallel index into shape.k
        for i in 1..within.len() {
            let step = self.shape.step(i) as u32;
            for _ in 0..within[i] {
                lbn =
                    adjacent_lbn(&self.geom, lbn, step).map_err(|e| MappingError::DoesNotFit {
                        reason: format!("adjacency walk left the zone: {e}"),
                    })?;
            }
        }
        Ok(lbn)
    }
}

impl Mapping for MultiMapping {
    fn name(&self) -> &str {
        "MultiMap"
    }

    fn kind(&self) -> MappingKind {
        MappingKind::MultiMap
    }

    fn grid(&self) -> &GridSpec {
        &self.grid
    }

    fn lbn_of(&self, coord: &[u64]) -> Result<Lbn> {
        if !self.grid.contains(coord) {
            return Err(MappingError::CoordOutOfGrid {
                coord: coord.to_vec(),
            });
        }
        let mut buf = [0u64; 16];
        assert!(coord.len() <= 16, "MultiMap supports at most 16 dimensions");
        let within = &mut buf[..coord.len()];
        let slot = self.decompose(coord, within);
        let place = self.layout.place(&self.geom, slot);
        let zone = &self.geom.zones()[place.zone_index];
        let spt = zone.sectors_per_track as u64;
        let surfaces = self.geom.surfaces as u64;

        let mut track = place.base_track;
        let mut jumps = 0u64;
        for (i, &y) in within.iter().enumerate().skip(1) {
            track += y * self.shape.step(i);
            jumps += y;
        }

        let base_cyl = place.base_track / surfaces;
        let base_surf = (place.base_track % surfaces) as u32;
        let off_base = self.geom.track_offset_sectors(zone, base_cyl, base_surf) as u64;
        let abs_slot = (off_base
            + place.base_sector as u64
            + within[0]
            + jumps * self.adj_off[place.zone_index])
            % spt;

        let cylinder = track / surfaces;
        let surface = (track % surfaces) as u32;
        let off_t = self.geom.track_offset_sectors(zone, cylinder, surface) as u64;
        let sector = ((abs_slot + spt - off_t % spt) % spt) as u32;
        Ok(self
            .geom
            .lbn_of(cylinder, surface, sector)
            // staticcheck: allow(no-unwrap) — cylinder/surface/sector are derived from this disk's own zone table.
            .expect("mapped cell must be on disk"))
    }

    fn coord_of(&self, lbn: Lbn) -> Option<Coord> {
        let loc = self.geom.locate(lbn).ok()?;
        let (row_first_slot, within_track, row_width) =
            self.layout.slot_of_track(&self.geom, loc.zone, loc.track)?;
        let n = self.grid.ndims();
        // Mixed-radix decomposition of the in-cube track offset.
        let mut within = vec![0u64; n];
        let mut rem = within_track;
        let mut jumps = 0u64;
        #[allow(clippy::needless_range_loop)] // parallel index into shape.k
        for i in 1..n {
            within[i] = rem % self.shape.k[i];
            rem /= self.shape.k[i];
            jumps += within[i];
        }
        debug_assert_eq!(rem, 0);

        let zone = &self.geom.zones()[loc.zone];
        let spt = zone.sectors_per_track as u64;
        let surfaces = self.geom.surfaces as u64;
        let base_track = loc.track - within_track;
        let base_cyl = base_track / surfaces;
        let base_surf = (base_track % surfaces) as u32;
        let off_base = self.geom.track_offset_sectors(zone, base_cyl, base_surf) as u64;
        let off_t = self
            .geom
            .track_offset_sectors(zone, loc.cylinder, loc.surface) as u64;
        let abs_slot = (off_t + loc.sector as u64) % spt;
        let shift = (off_base + jumps * self.adj_off[loc.zone]) % spt;
        let r = (abs_slot + spt - shift) % spt;

        let pos = r / self.shape.k[0];
        within[0] = r % self.shape.k[0];
        if pos >= row_width {
            return None; // Unused track tail.
        }
        let slot = row_first_slot + pos;
        if slot >= self.layout.total_slots() {
            return None;
        }
        let cube = self.cube_grid.coord_of_linear(slot)?;
        let mut coord = vec![0u64; n];
        for d in 0..n {
            coord[d] = cube[d] * self.shape.k[d] + within[d];
            if coord[d] >= self.grid.extent(d) {
                return None; // Padding cell of an edge cube.
            }
        }
        Some(coord)
    }

    fn blocks_spanned(&self) -> u64 {
        self.layout.end_lbn(&self.geom) - self.layout.start_lbn(&self.geom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_disksim::profiles;

    /// All cells of the paper's 3-D example on the toy disk: the closed
    /// form must equal the literal Figure 5 adjacency walk.
    #[test]
    fn closed_form_matches_figure5_walk_toy() {
        let geom = profiles::toy();
        let grid = GridSpec::new([5u64, 3, 3]);
        let m = MultiMapping::new(&geom, grid.clone()).unwrap();
        assert_eq!(m.shape().k, vec![5, 3, 3]);
        grid.for_each_cell(|c| {
            let fast = m.lbn_of(c).unwrap();
            let slow = m.lbn_of_iterative(c).unwrap();
            assert_eq!(fast, slow, "cell {c:?}");
        });
    }

    #[test]
    fn closed_form_matches_figure5_walk_multi_cube() {
        let geom = profiles::small();
        // Forces several cubes across dims 0 and 1.
        let grid = GridSpec::new([150u64, 40, 12]);
        let m = MultiMapping::new(&geom, grid.clone()).unwrap();
        assert!(m.cube_grid().extent(0) > 1);
        assert!(m.cube_grid().extent(1) > 1);
        grid.for_each_cell(|c| {
            assert_eq!(
                m.lbn_of(c).unwrap(),
                m.lbn_of_iterative(c).unwrap(),
                "cell {c:?}"
            );
        });
    }

    #[test]
    fn mapping_is_injective_and_invertible() {
        let geom = profiles::small();
        let grid = GridSpec::new([70u64, 10, 6]);
        let m = MultiMapping::new(&geom, grid.clone()).unwrap();
        let mut seen = std::collections::HashSet::new();
        grid.for_each_cell(|c| {
            let l = m.lbn_of(c).unwrap();
            assert!(seen.insert(l), "LBN collision at {c:?}");
            assert_eq!(m.coord_of(l).unwrap(), c.to_vec(), "inverse at {c:?}");
        });
    }

    #[test]
    fn dim0_is_sequential_on_track_modulo_wrap() {
        // Cells along Dim0 live on one track at consecutive angular
        // positions. In LBN space that is a run of consecutive blocks
        // with at most one wrap back to the track's first LBN (the wrap
        // is free: the platter rotates continuously past the index).
        let geom = profiles::small();
        let grid = GridSpec::new([100u64, 4, 4]);
        let m = MultiMapping::new(&geom, grid).unwrap();
        let base = m.lbn_of(&[0, 2, 1]).unwrap();
        let (first, last) = geom.track_boundaries(base).unwrap();
        let mut wraps = 0;
        let mut prev = base;
        for x0 in 1..100u64 {
            let l = m.lbn_of(&[x0, 2, 1]).unwrap();
            assert!((first..=last).contains(&l), "left the track at x0={x0}");
            if l == prev + 1 {
                // Sequential continuation.
            } else {
                assert_eq!(l, first, "non-wrap jump at x0={x0}");
                wraps += 1;
            }
            prev = l;
        }
        assert!(wraps <= 1, "at most one wrap per track row");
    }

    #[test]
    fn dim0_is_strictly_sequential_when_row_starts_at_sector_zero() {
        // Cube slot 0 of the first row starts at sector 0; its J=0 row is
        // wrap-free, so Dim0 is plain `base + x0` there.
        let geom = profiles::small();
        let grid = GridSpec::new([100u64, 4, 4]);
        let m = MultiMapping::new(&geom, grid).unwrap();
        let base = m.lbn_of(&[0, 0, 0]).unwrap();
        for x0 in 1..100u64 {
            assert_eq!(m.lbn_of(&[x0, 0, 0]).unwrap(), base + x0);
        }
    }

    #[test]
    fn dim_i_neighbours_are_adjacent_blocks() {
        let geom = profiles::small();
        let grid = GridSpec::new([60u64, 8, 4]);
        let m = MultiMapping::new(&geom, grid).unwrap();
        let k = m.shape().k.clone();
        // Within one basic cube, a +1 step along dim i lands exactly on
        // the step(i)-th adjacent block.
        for dim in 1..3usize {
            let a = m.lbn_of(&[3, 0, 0]).unwrap();
            let mut up = vec![3u64, 0, 0];
            up[dim] = 1;
            assert!(up[dim] < k[dim]);
            let b = m.lbn_of(&up).unwrap();
            let expect = adjacent_lbn(&geom, a, m.shape().step(dim) as u32).unwrap();
            assert_eq!(b, expect, "dim {dim}");
        }
    }

    #[test]
    fn coord_of_rejects_foreign_lbns() {
        let geom = profiles::small();
        let grid = GridSpec::new([50u64, 4, 4]);
        let m = MultiMapping::new(&geom, grid.clone()).unwrap();
        // Collect all mapped LBNs, then probe the complement nearby.
        let mut mapped = std::collections::HashSet::new();
        grid.for_each_cell(|c| {
            mapped.insert(m.lbn_of(c).unwrap());
        });
        let mut foreign_checked = 0;
        for lbn in 0..5_000u64 {
            if !mapped.contains(&lbn) {
                if let Some(c) = m.coord_of(lbn) {
                    panic!("foreign lbn {lbn} decoded to {c:?}");
                }
                foreign_checked += 1;
            }
        }
        assert!(foreign_checked > 0);
    }

    #[test]
    fn shape_override_is_validated() {
        let geom = profiles::small();
        let grid = GridSpec::new([50u64, 4, 4]);
        let bad = MultiMapping::with_options(
            &geom,
            grid.clone(),
            MultiMapOptions {
                first_zone: 0,
                shape_override: Some(vec![50, 1000, 4]),
                zone_limit: None,
            },
        );
        assert!(bad.is_err());
        let good = MultiMapping::with_options(
            &geom,
            grid,
            MultiMapOptions {
                first_zone: 0,
                shape_override: Some(vec![50, 4, 4]),
                zone_limit: None,
            },
        );
        assert!(good.is_ok());
    }

    #[test]
    fn one_and_two_dimensional_datasets_map() {
        let geom = profiles::small();
        // 1-D: pure along-track packing.
        let g1 = GridSpec::new([500u64]);
        let m1 = MultiMapping::new(&geom, g1.clone()).unwrap();
        let mut seen = std::collections::HashSet::new();
        g1.for_each_cell(|c| {
            let l = m1.lbn_of(c).unwrap();
            assert!(seen.insert(l));
            assert_eq!(m1.coord_of(l).unwrap(), c.to_vec());
        });
        // 2-D: Dim1 along first-adjacent chains (the paper's Figure 2).
        let g2 = GridSpec::new([60u64, 30]);
        let m2 = MultiMapping::new(&geom, g2.clone()).unwrap();
        let a = m2.lbn_of(&[0, 0]).unwrap();
        let b = m2.lbn_of(&[0, 1]).unwrap();
        assert_eq!(b, adjacent_lbn(&geom, a, 1).unwrap());
        let mut seen = std::collections::HashSet::new();
        g2.for_each_cell(|c| {
            let l = m2.lbn_of(c).unwrap();
            assert!(seen.insert(l));
            assert_eq!(m2.coord_of(l).unwrap(), c.to_vec());
        });
    }

    #[test]
    fn too_large_dataset_rejected() {
        let geom = profiles::toy();
        let grid = GridSpec::new([5u64, 3, 3000]);
        assert!(matches!(
            MultiMapping::new(&geom, grid),
            Err(MappingError::DoesNotFit { .. })
        ));
    }

    #[test]
    fn utilization_accounts_for_track_tail_waste() {
        // Section 4.4: packing K0=259 cubes on T=740 tracks wastes
        // (T mod K0)/T of each track.
        let geom = profiles::cheetah_36es();
        let grid = GridSpec::new([259u64, 128, 82]);
        let m = MultiMapping::new(&geom, grid).unwrap();
        assert_eq!(m.shape().k, vec![259, 128, 82]);
        let util = m.space_utilization();
        // One cube exactly: spans 128*82 tracks of 740 sectors, uses 259
        // of each track.
        let expect = 259.0 / 740.0;
        assert!(
            (util - expect).abs() < 0.05,
            "utilization {util} vs expected ≈ {expect}"
        );
    }
}
