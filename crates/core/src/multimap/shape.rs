//! Basic-cube shape selection (Section 4.2, Equations 1–3).
//!
//! The *basic cube* is the largest data cube that can be mapped without
//! losing spatial locality. Its side lengths `K_i` must satisfy:
//!
//! * Eq. 1 — `K_0 ≤ T` (the track length in cells);
//! * Eq. 3 — `∏_{i=1}^{N-2} K_i ≤ D` (all middle dimensions fit within
//!   the adjacency depth, so stepping the last dimension still reaches an
//!   adjacent block);
//! * Eq. 2 — `K_{N-1} ≤ ⌊tracks-in-zone / ∏_{i=1}^{N-2} K_i⌋` (the cube
//!   never crosses a zone boundary).
//!
//! The paper leaves the exact choice of `K_1..K_{N-2}` to the system
//! ("a system can choose the best basic cube size based on the
//! dimensions of its datasets"); [`solve`] minimises the number of basic
//! cubes needed and breaks ties toward balanced per-dimension coverage.

use crate::mapping::{MappingError, Result};

/// Resolved basic-cube shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicCubeShape {
    /// Side length `K_i` of each dimension (length `N`).
    pub k: Vec<u64>,
}

impl BasicCubeShape {
    /// Adjacency step for dimension `i ≥ 1`: stepping one cell along
    /// `Dim_i` jumps to the `steps(i)`-th adjacent block, i.e. advances
    /// `∏_{j=1}^{i-1} K_j` tracks (Section 4.2).
    pub fn step(&self, dim: usize) -> u64 {
        debug_assert!(dim >= 1 && dim < self.k.len());
        self.k[1..dim].iter().product()
    }

    /// Tracks one basic cube occupies: `∏_{i≥1} K_i` (1 for 1-D data).
    pub fn tracks_per_cube(&self) -> u64 {
        self.k[1..].iter().product()
    }

    /// Cells in one basic cube.
    pub fn cells(&self) -> u64 {
        self.k.iter().product()
    }

    /// Verify Equations 1–3 against the given constraints.
    pub fn validate(&self, c: &ShapeConstraints) -> Result<()> {
        let n = self.k.len();
        if self.k.contains(&0) {
            return Err(infeasible("zero-length cube side"));
        }
        if self.k[0] > c.track_cells {
            return Err(infeasible("Eq.1 violated: K0 > T"));
        }
        if n >= 3 {
            let mid: u64 = self.k[1..n - 1].iter().product();
            if mid > c.adjacency {
                return Err(infeasible("Eq.3 violated: prod(K_1..K_{N-2}) > D"));
            }
        }
        if n >= 2 && self.tracks_per_cube() > c.zone_tracks {
            return Err(infeasible("Eq.2 violated: cube crosses zone boundary"));
        }
        Ok(())
    }
}

/// Disk-side constraints on the basic cube, in cell units.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShapeConstraints {
    /// Track length `T` in cells (minimum over the zones that will be
    /// used, since a cube shape is shared across zones).
    pub track_cells: u64,
    /// Adjacency depth `D`.
    pub adjacency: u64,
    /// Tracks per zone (minimum over the zones that will be used).
    pub zone_tracks: u64,
}

fn infeasible(reason: &str) -> MappingError {
    MappingError::InfeasibleBasicCube {
        reason: reason.to_string(),
    }
}

/// The largest dimensionality MultiMap supports for a given adjacency
/// depth `D` (Equation 5: `N_max = 2 + log2 D` with `K = 2`).
pub fn max_dimensions(adjacency: u64) -> u32 {
    2 + 63u32.saturating_sub(adjacency.max(1).leading_zeros())
}

/// Choose a basic-cube shape for a dataset with the given extents.
///
/// Objective: minimise the total number of basic cubes, then maximise the
/// worst per-dimension fill ratio `K_i / S_i`, then maximise cube volume.
pub fn solve(extents: &[u64], c: &ShapeConstraints) -> Result<BasicCubeShape> {
    let n = extents.len();
    if n == 0 {
        return Err(infeasible("dataset has no dimensions"));
    }
    if extents.contains(&0) {
        return Err(infeasible("dataset has an empty dimension"));
    }
    if c.track_cells == 0 || c.zone_tracks == 0 {
        return Err(infeasible("disk has no usable capacity"));
    }
    if n as u32 > max_dimensions(c.adjacency) {
        return Err(infeasible("too many dimensions for adjacency depth D"));
    }

    let k0 = extents[0].min(c.track_cells);
    if n == 1 {
        return Ok(BasicCubeShape { k: vec![k0] });
    }
    if n == 2 {
        let k1 = extents[1].min(c.zone_tracks);
        return Ok(BasicCubeShape { k: vec![k0, k1] });
    }

    // Middle dimensions 1..n-1 (exclusive of the last).
    let mids = &extents[1..n - 1];
    let best = if mids.len() <= 4 {
        search_exhaustive(mids, extents[n - 1], c)
    } else {
        balanced_heuristic(mids, extents[n - 1], c)
    };
    let Some(mid_k) = best else {
        return Err(infeasible(
            "no assignment of middle dimensions fits within D",
        ));
    };
    let mid_prod: u64 = mid_k.iter().product();
    let cap_last = c.zone_tracks / mid_prod;
    if cap_last == 0 {
        return Err(infeasible("zone too small for chosen middle dimensions"));
    }
    let k_last = extents[n - 1].min(cap_last);

    let mut k = Vec::with_capacity(n);
    k.push(k0);
    k.extend_from_slice(&mid_k);
    k.push(k_last);
    let shape = BasicCubeShape { k };
    shape.validate(c)?;
    Ok(shape)
}

/// Candidate quality: (total cubes ↓, worst fill ratio ↑, volume ↑).
fn score(
    mid_k: &[u64],
    mids: &[u64],
    s_last: u64,
    c: &ShapeConstraints,
) -> Option<(u64, f64, u64)> {
    let mid_prod: u64 = mid_k.iter().product();
    if mid_prod > c.adjacency {
        return None;
    }
    let cap_last = c.zone_tracks / mid_prod;
    if cap_last == 0 {
        return None;
    }
    let k_last = s_last.min(cap_last);
    let mut cubes = s_last.div_ceil(k_last);
    let mut worst = k_last as f64 / s_last as f64;
    let mut volume = k_last;
    for (&k, &s) in mid_k.iter().zip(mids) {
        cubes *= s.div_ceil(k);
        worst = worst.min(k as f64 / s as f64);
        volume *= k;
    }
    Some((cubes, worst, volume))
}

fn better(a: (u64, f64, u64), b: (u64, f64, u64)) -> bool {
    if a.0 != b.0 {
        return a.0 < b.0;
    }
    if (a.1 - b.1).abs() > 1e-12 {
        return a.1 > b.1;
    }
    a.2 > b.2
}

type Candidate = (Vec<u64>, (u64, f64, u64));

fn search_exhaustive(mids: &[u64], s_last: u64, c: &ShapeConstraints) -> Option<Vec<u64>> {
    let mut best: Option<Candidate> = None;
    let mut current = vec![1u64; mids.len()];
    fn rec(
        dim: usize,
        budget: u64,
        mids: &[u64],
        s_last: u64,
        c: &ShapeConstraints,
        current: &mut Vec<u64>,
        best: &mut Option<Candidate>,
    ) {
        if dim == mids.len() {
            if let Some(s) = score(current, mids, s_last, c) {
                if best.as_ref().is_none_or(|(_, b)| better(s, *b)) {
                    *best = Some((current.clone(), s));
                }
            }
            return;
        }
        let hi = mids[dim].min(budget);
        for k in 1..=hi {
            current[dim] = k;
            rec(dim + 1, budget / k, mids, s_last, c, current, best);
        }
        current[dim] = 1;
    }
    rec(0, c.adjacency, mids, s_last, c, &mut current, &mut best);
    best.map(|(k, _)| k)
}

fn balanced_heuristic(mids: &[u64], s_last: u64, c: &ShapeConstraints) -> Option<Vec<u64>> {
    // Start with the integer geometric mean of the budget, clamp to each
    // extent, then greedily grow dimensions while budget remains.
    let m = mids.len() as f64;
    let target = (c.adjacency as f64).powf(1.0 / m).floor().max(1.0) as u64;
    let mut k: Vec<u64> = mids.iter().map(|&s| s.min(target).max(1)).collect();
    let mut prod: u64 = k.iter().product();
    if prod > c.adjacency {
        return None;
    }
    loop {
        // Grow the dimension with the worst fill ratio that still fits.
        let mut grew = false;
        let mut order: Vec<usize> = (0..k.len()).collect();
        order.sort_by(|&a, &b| {
            let ra = k[a] as f64 / mids[a] as f64;
            let rb = k[b] as f64 / mids[b] as f64;
            // staticcheck: allow(no-unwrap) — ratios of positive in-range integers are finite, never NaN.
            ra.partial_cmp(&rb).expect("fill ratios are finite")
        });
        for i in order {
            if k[i] < mids[i] && prod / k[i] * (k[i] + 1) <= c.adjacency {
                prod = prod / k[i] * (k[i] + 1);
                k[i] += 1;
                grew = true;
                break;
            }
        }
        if !grew {
            break;
        }
    }
    score(&k, mids, s_last, c).map(|_| k)
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: ShapeConstraints = ShapeConstraints {
        track_cells: 740,
        adjacency: 128,
        zone_tracks: 10_520,
    };

    #[test]
    fn paper_synthetic_3d_chunk() {
        // 259^3 chunk, D = 128 (Section 5.3).
        let shape = solve(&[259, 259, 259], &C).unwrap();
        assert_eq!(shape.k[0], 259);
        assert!(shape.k[1] <= 128, "Eq.3: K1 bounded by D");
        // Last dim fits the zone budget (Eq.2).
        assert!(shape.k[2] <= C.zone_tracks / shape.k[1]);
        shape.validate(&C).unwrap();
        // Minimising cube count: 7 cubes is optimal for this chunk
        // (K1 = 40 keeps K2 = 259 within one zone), and the ratio
        // tie-break picks the largest such K1.
        let cubes = 259u64.div_ceil(shape.k[1]) * 259u64.div_ceil(shape.k[2]);
        assert_eq!(cubes, 7);
        assert_eq!(shape.k, vec![259, 40, 259]);
    }

    #[test]
    fn paper_2d_example() {
        // Figure 2: (5,3) rectangle with T = 5.
        let c = ShapeConstraints {
            track_cells: 5,
            adjacency: 9,
            zone_tracks: 120,
        };
        let shape = solve(&[5, 3], &c).unwrap();
        assert_eq!(shape.k, vec![5, 3]);
        assert_eq!(shape.tracks_per_cube(), 3);
    }

    #[test]
    fn paper_3d_example() {
        // Figure 3: (5,3,3) with T = 5, D = 9.
        let c = ShapeConstraints {
            track_cells: 5,
            adjacency: 9,
            zone_tracks: 120,
        };
        let shape = solve(&[5, 3, 3], &c).unwrap();
        assert_eq!(shape.k, vec![5, 3, 3]);
        // Dim2 steps use the K1-th (= 3rd) adjacent block.
        assert_eq!(shape.step(1), 1);
        assert_eq!(shape.step(2), 3);
    }

    #[test]
    fn paper_4d_example() {
        // Figure 4: (5,3,3,2) with T = 5, D = 9: Dim3 uses the 9th
        // adjacent block (K1 * K2 = 9 ≤ D).
        let c = ShapeConstraints {
            track_cells: 5,
            adjacency: 9,
            zone_tracks: 120,
        };
        let shape = solve(&[5, 3, 3, 2], &c).unwrap();
        assert_eq!(shape.k, vec![5, 3, 3, 2]);
        assert_eq!(shape.step(3), 9);
        assert_eq!(shape.tracks_per_cube(), 18);
    }

    #[test]
    fn olap_4d_shape_respects_d() {
        // The OLAP chunk (591, 75, 25, 25) with D = 128 (Section 5.5).
        let shape = solve(&[591, 75, 25, 25], &C).unwrap();
        assert_eq!(shape.k[0], 591);
        assert!(shape.k[1] * shape.k[2] <= 128);
        shape.validate(&C).unwrap();
    }

    #[test]
    fn one_and_two_dimensional_datasets() {
        let s1 = solve(&[10_000], &C).unwrap();
        assert_eq!(s1.k, vec![740]);
        assert_eq!(s1.tracks_per_cube(), 1);
        let s2 = solve(&[100, 50_000], &C).unwrap();
        assert_eq!(s2.k, vec![100, 10_520]);
    }

    #[test]
    fn infeasible_when_too_many_dims() {
        let c = ShapeConstraints {
            track_cells: 100,
            adjacency: 4,
            zone_tracks: 1000,
        };
        // N_max = 2 + log2(4) = 4; a 5-D dataset must be rejected.
        assert_eq!(max_dimensions(4), 4);
        assert!(solve(&[10, 2, 2, 2, 2], &c).is_err());
    }

    #[test]
    fn max_dimensions_formula() {
        assert_eq!(max_dimensions(1), 2);
        assert_eq!(max_dimensions(2), 3);
        assert_eq!(max_dimensions(128), 9);
        assert_eq!(max_dimensions(256), 10);
        // "More than 10 dimensions" for D in the hundreds (Section 4.3).
        assert!(max_dimensions(1024) > 10);
    }

    #[test]
    fn zero_extent_rejected() {
        assert!(solve(&[0, 5], &C).is_err());
        assert!(solve(&[], &C).is_err());
    }

    #[test]
    fn validate_catches_violations() {
        let bad = BasicCubeShape {
            k: vec![1000, 2, 2],
        };
        assert!(bad.validate(&C).is_err()); // K0 > T
        let bad = BasicCubeShape {
            k: vec![10, 200, 2],
        };
        assert!(bad.validate(&C).is_err()); // Eq.3
        let bad = BasicCubeShape {
            k: vec![10, 2, 20_000],
        };
        assert!(bad.validate(&C).is_err()); // Eq.2
    }

    #[test]
    fn heuristic_path_for_many_dims() {
        let c = ShapeConstraints {
            track_cells: 740,
            adjacency: 1 << 10,
            zone_tracks: 100_000,
        };
        // 8-D dataset: 6 middle dimensions triggers the heuristic.
        let shape = solve(&[700, 4, 4, 4, 4, 4, 4, 50], &c).unwrap();
        let mid: u64 = shape.k[1..7].iter().product();
        assert!(mid <= 1 << 10);
        assert!(shape.k[1..7].iter().all(|&k| (1..=4).contains(&k)));
        shape.validate(&c).unwrap();
    }
}
