//! The MultiMap algorithm: basic-cube shapes, cube layout, and the cell
//! mapping (Sections 4.1–4.4 of the paper).

pub mod layout;
pub mod map;
pub mod shape;
pub mod zoned;

pub use layout::{CubeLayout, SlotPlacement, ZoneAlloc};
pub use map::{MultiMapOptions, MultiMapping};
pub use shape::{max_dimensions, solve as solve_basic_cube, BasicCubeShape, ShapeConstraints};
pub use zoned::ZonedMultiMapping;
