//! Partitioning large datasets into per-disk chunks (Section 5.3).
//!
//! The paper's synthetic dataset is 1024³ cells, partitioned "into
//! chunks of at most 259×259×259 cells that fit on a single disk", each
//! chunk mapped to a different disk of the logical volume. This module
//! provides the coordinate bookkeeping: global coordinate ↔ (chunk,
//! local coordinate), chunk extents at dataset edges, and a deterministic
//! chunk→disk assignment hook.

use serde::{Deserialize, Serialize};

use crate::grid::{Coord, GridSpec};

/// A dataset partitioned into axis-aligned chunks.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkedDataset {
    global: GridSpec,
    chunk_extents: Vec<u64>,
    /// Number of chunks along each dimension.
    chunk_grid: GridSpec,
}

impl ChunkedDataset {
    /// Partition `global` into chunks of at most `chunk_extents` cells
    /// per dimension.
    ///
    /// # Panics
    /// Panics on arity mismatch or zero chunk extents.
    pub fn new(global: GridSpec, chunk_extents: impl Into<Vec<u64>>) -> Self {
        let chunk_extents = chunk_extents.into();
        assert_eq!(
            chunk_extents.len(),
            global.ndims(),
            "chunk extents arity mismatch"
        );
        assert!(
            chunk_extents.iter().all(|&e| e > 0),
            "chunk extents must be positive"
        );
        let counts: Vec<u64> = global
            .extents()
            .iter()
            .zip(&chunk_extents)
            .map(|(&s, &c)| s.div_ceil(c))
            .collect();
        ChunkedDataset {
            global,
            chunk_extents,
            chunk_grid: GridSpec::new(counts),
        }
    }

    /// The global dataset grid.
    #[inline]
    pub fn global(&self) -> &GridSpec {
        &self.global
    }

    /// Nominal chunk extents (edge chunks may be smaller).
    #[inline]
    pub fn chunk_extents(&self) -> &[u64] {
        &self.chunk_extents
    }

    /// Grid of chunk counts per dimension.
    #[inline]
    pub fn chunk_grid(&self) -> &GridSpec {
        &self.chunk_grid
    }

    /// Total number of chunks.
    pub fn chunk_count(&self) -> u64 {
        self.chunk_grid.cells()
    }

    /// Chunk id (row-major) and local coordinate of a global coordinate.
    ///
    /// # Panics
    /// Debug-asserts the coordinate is in the global grid.
    pub fn locate(&self, coord: &[u64]) -> (u64, Coord) {
        debug_assert!(self.global.contains(coord));
        let n = coord.len();
        let mut chunk = vec![0u64; n];
        let mut local = vec![0u64; n];
        for d in 0..n {
            chunk[d] = coord[d] / self.chunk_extents[d];
            local[d] = coord[d] % self.chunk_extents[d];
        }
        (self.chunk_grid.linear_index(&chunk), local)
    }

    /// The actual grid of one chunk (edge chunks are truncated to the
    /// dataset boundary).
    pub fn chunk_shape(&self, chunk_id: u64) -> GridSpec {
        let c = self
            .chunk_grid
            .coord_of_linear(chunk_id)
            // staticcheck: allow(no-unwrap) — chunk_id is drawn from the chunk grid's own linear range.
            .expect("chunk id in range");
        let extents: Vec<u64> = (0..self.global.ndims())
            .map(|d| {
                let start = c[d] * self.chunk_extents[d];
                (self.global.extent(d) - start).min(self.chunk_extents[d])
            })
            .collect();
        GridSpec::new(extents)
    }

    /// Lower corner of a chunk in global coordinates.
    pub fn chunk_origin(&self, chunk_id: u64) -> Coord {
        let c = self
            .chunk_grid
            .coord_of_linear(chunk_id)
            // staticcheck: allow(no-unwrap) — chunk_id is drawn from the chunk grid's own linear range.
            .expect("chunk id in range");
        c.iter()
            .zip(&self.chunk_extents)
            .map(|(&ci, &e)| ci * e)
            .collect()
    }

    /// Disk holding the chunk under round-robin declustering over
    /// `ndisks` (the paper maps "each chunk to a different disk").
    pub fn disk_of(&self, chunk_id: u64, ndisks: usize) -> usize {
        (chunk_id % ndisks as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_setup() -> ChunkedDataset {
        // 1024^3 cells in <=259^3 chunks (Section 5.3).
        ChunkedDataset::new(GridSpec::new([1024u64, 1024, 1024]), [259u64, 259, 259])
    }

    #[test]
    fn paper_chunk_counts() {
        let d = paper_setup();
        assert_eq!(d.chunk_grid().extents(), &[4, 4, 4]);
        assert_eq!(d.chunk_count(), 64);
    }

    #[test]
    fn locate_roundtrip() {
        let d = paper_setup();
        for coord in [
            [0u64, 0, 0],
            [258, 258, 258],
            [259, 0, 777],
            [1023, 1023, 1023],
        ] {
            let (chunk, local) = d.locate(&coord);
            let origin = d.chunk_origin(chunk);
            let shape = d.chunk_shape(chunk);
            for dim in 0..3 {
                assert_eq!(origin[dim] + local[dim], coord[dim]);
                assert!(local[dim] < shape.extent(dim));
            }
        }
    }

    #[test]
    fn edge_chunks_are_truncated() {
        let d = paper_setup();
        // Chunk (3,3,3) covers 777..1023 = 247 cells per dim.
        let last = d.chunk_count() - 1;
        assert_eq!(d.chunk_shape(last).extents(), &[247, 247, 247]);
        assert_eq!(d.chunk_origin(last), vec![777, 777, 777]);
        // Interior chunks are full-size.
        assert_eq!(d.chunk_shape(0).extents(), &[259, 259, 259]);
    }

    #[test]
    fn every_cell_belongs_to_exactly_one_chunk() {
        let d = ChunkedDataset::new(GridSpec::new([10u64, 7]), [4u64, 3]);
        let mut per_chunk = vec![0u64; d.chunk_count() as usize];
        d.global().clone().for_each_cell(|c| {
            let (chunk, _) = d.locate(c);
            per_chunk[chunk as usize] += 1;
        });
        let total: u64 = per_chunk.iter().sum();
        assert_eq!(total, 70);
        // Chunk volumes match their shapes.
        for (id, &count) in per_chunk.iter().enumerate() {
            assert_eq!(count, d.chunk_shape(id as u64).cells(), "chunk {id}");
        }
    }

    #[test]
    fn round_robin_disks() {
        let d = paper_setup();
        let mut counts = [0usize; 4];
        for chunk in 0..d.chunk_count() {
            counts[d.disk_of(chunk, 4)] += 1;
        }
        assert_eq!(counts, [16, 16, 16, 16]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let _ = ChunkedDataset::new(GridSpec::new([10u64, 10]), [4u64]);
    }
}
