//! N-dimensional grid datasets and axis-aligned regions.
//!
//! MultiMap operates on datasets that have been partitioned into an N-D
//! grid of *cells* (Section 4): each cell is the unit of allocation and
//! transfer and occupies one (or a few) disk blocks.

use serde::{Deserialize, Serialize};

/// An N-dimensional coordinate.
pub type Coord = Vec<u64>;

/// The shape of a gridded dataset: the extent `S_i` of every dimension.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridSpec {
    extents: Vec<u64>,
}

impl GridSpec {
    /// A grid with the given per-dimension extents.
    ///
    /// # Panics
    /// Panics if `extents` is empty or any extent is zero.
    pub fn new(extents: impl Into<Vec<u64>>) -> Self {
        let extents = extents.into();
        assert!(!extents.is_empty(), "a grid needs at least one dimension");
        assert!(
            extents.iter().all(|&e| e > 0),
            "grid extents must be positive"
        );
        GridSpec { extents }
    }

    /// Number of dimensions `N`.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.extents.len()
    }

    /// Per-dimension extents `S_i`.
    #[inline]
    pub fn extents(&self) -> &[u64] {
        &self.extents
    }

    /// Extent of one dimension.
    #[inline]
    pub fn extent(&self, dim: usize) -> u64 {
        self.extents[dim]
    }

    /// Total number of cells.
    pub fn cells(&self) -> u64 {
        self.extents.iter().product()
    }

    /// Whether `coord` lies inside the grid.
    pub fn contains(&self, coord: &[u64]) -> bool {
        coord.len() == self.extents.len() && coord.iter().zip(&self.extents).all(|(c, e)| c < e)
    }

    /// Row-major linear index with **dimension 0 varying fastest** (the
    /// paper's `Dim0` is the primary, innermost order).
    pub fn linear_index(&self, coord: &[u64]) -> u64 {
        debug_assert!(self.contains(coord));
        let mut idx = 0u64;
        for d in (0..self.extents.len()).rev() {
            idx = idx * self.extents[d] + coord[d];
        }
        idx
    }

    /// Inverse of [`Self::linear_index`].
    pub fn coord_of_linear(&self, mut idx: u64) -> Option<Coord> {
        if idx >= self.cells() {
            return None;
        }
        let mut coord = vec![0u64; self.extents.len()];
        for (c, &e) in coord.iter_mut().zip(&self.extents) {
            *c = idx % e;
            idx /= e;
        }
        Some(coord)
    }

    /// The whole grid as a region.
    pub fn bounding_region(&self) -> BoxRegion {
        BoxRegion::new(
            vec![0; self.ndims()],
            self.extents.iter().map(|e| e - 1).collect::<Vec<_>>(),
        )
    }

    /// Visit every cell in row-major order (dimension 0 fastest) without
    /// allocating per cell.
    pub fn for_each_cell(&self, f: impl FnMut(&[u64])) {
        self.bounding_region().for_each_cell(f);
    }
}

/// An axis-aligned box of cells with **inclusive** bounds.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoxRegion {
    lo: Vec<u64>,
    hi: Vec<u64>,
}

impl BoxRegion {
    /// A region spanning `lo..=hi` in every dimension.
    ///
    /// # Panics
    /// Panics if arities differ or any `lo[d] > hi[d]`.
    pub fn new(lo: impl Into<Vec<u64>>, hi: impl Into<Vec<u64>>) -> Self {
        let (lo, hi) = (lo.into(), hi.into());
        assert_eq!(lo.len(), hi.len(), "region bounds arity mismatch");
        assert!(!lo.is_empty(), "a region needs at least one dimension");
        assert!(
            lo.iter().zip(&hi).all(|(l, h)| l <= h),
            "region lower bound exceeds upper bound"
        );
        BoxRegion { lo, hi }
    }

    /// A single-cell region.
    pub fn point(coord: impl Into<Vec<u64>>) -> Self {
        let c = coord.into();
        BoxRegion::new(c.clone(), c)
    }

    /// A beam (1-D line of cells) along `dim` through `anchor`, spanning
    /// the full `0..extent` range of that dimension.
    pub fn beam(grid: &GridSpec, dim: usize, anchor: &[u64]) -> Self {
        assert!(dim < grid.ndims());
        assert_eq!(anchor.len(), grid.ndims());
        let mut lo = anchor.to_vec();
        let mut hi = anchor.to_vec();
        lo[dim] = 0;
        hi[dim] = grid.extent(dim) - 1;
        BoxRegion::new(lo, hi)
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.lo.len()
    }

    /// Inclusive lower corner.
    #[inline]
    pub fn lo(&self) -> &[u64] {
        &self.lo
    }

    /// Inclusive upper corner.
    #[inline]
    pub fn hi(&self) -> &[u64] {
        &self.hi
    }

    /// Extent along one dimension.
    #[inline]
    pub fn extent(&self, dim: usize) -> u64 {
        self.hi[dim] - self.lo[dim] + 1
    }

    /// Number of cells in the region.
    pub fn cells(&self) -> u64 {
        (0..self.ndims()).map(|d| self.extent(d)).product()
    }

    /// Whether the region lies entirely inside `grid`.
    pub fn fits(&self, grid: &GridSpec) -> bool {
        self.ndims() == grid.ndims() && grid.contains(&self.hi)
    }

    /// Whether `coord` lies inside the region.
    pub fn contains(&self, coord: &[u64]) -> bool {
        coord.len() == self.ndims()
            && coord
                .iter()
                .zip(self.lo.iter().zip(&self.hi))
                .all(|(c, (l, h))| l <= c && c <= h)
    }

    /// Visit every cell in row-major order (dimension 0 fastest) without
    /// allocating per cell.
    pub fn for_each_cell(&self, mut f: impl FnMut(&[u64])) {
        let n = self.ndims();
        let mut cur = self.lo.clone();
        loop {
            f(&cur);
            // Odometer increment, dimension 0 fastest.
            let mut d = 0;
            loop {
                if d == n {
                    return;
                }
                if cur[d] < self.hi[d] {
                    cur[d] += 1;
                    break;
                }
                cur[d] = self.lo[d];
                d += 1;
            }
        }
    }

    /// Collect every cell (allocating; prefer [`Self::for_each_cell`] in
    /// hot paths).
    pub fn cells_vec(&self) -> Vec<Coord> {
        let mut out = Vec::with_capacity(self.cells().min(1 << 24) as usize);
        self.for_each_cell(|c| out.push(c.to_vec()));
        out
    }

    /// Visit every maximal run of cells contiguous along dimension 0:
    /// calls `f(start_coord, run_len)` once per run. This is how the
    /// storage manager issues MultiMap range queries (Section 5.2,
    /// "favoring sequential access").
    pub fn for_each_dim0_run(&self, mut f: impl FnMut(&[u64], u64)) {
        let n = self.ndims();
        let run = self.extent(0);
        if n == 1 {
            f(&self.lo, run);
            return;
        }
        // Iterate the region collapsed along dim 0.
        let mut cur = self.lo.clone();
        loop {
            f(&cur, run);
            let mut d = 1;
            loop {
                if d == n {
                    return;
                }
                if cur[d] < self.hi[d] {
                    cur[d] += 1;
                    break;
                }
                cur[d] = self.lo[d];
                d += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_basics() {
        let g = GridSpec::new([5u64, 3, 2]);
        assert_eq!(g.ndims(), 3);
        assert_eq!(g.cells(), 30);
        assert!(g.contains(&[4, 2, 1]));
        assert!(!g.contains(&[5, 0, 0]));
        assert!(!g.contains(&[0, 0]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_panics() {
        let _ = GridSpec::new([3u64, 0]);
    }

    #[test]
    fn linear_index_roundtrip() {
        let g = GridSpec::new([5u64, 3, 2]);
        let mut seen = [false; 30];
        g.for_each_cell(|c| {
            let i = g.linear_index(c) as usize;
            assert!(!seen[i]);
            seen[i] = true;
            assert_eq!(g.coord_of_linear(i as u64).unwrap(), c.to_vec());
        });
        assert!(seen.iter().all(|&s| s));
        assert_eq!(g.coord_of_linear(30), None);
    }

    #[test]
    fn dim0_is_fastest() {
        let g = GridSpec::new([5u64, 3]);
        assert_eq!(g.linear_index(&[1, 0]), 1);
        assert_eq!(g.linear_index(&[0, 1]), 5);
    }

    #[test]
    fn region_cells_and_contains() {
        let r = BoxRegion::new([1u64, 1], [3u64, 2]);
        assert_eq!(r.cells(), 6);
        assert!(r.contains(&[2, 2]));
        assert!(!r.contains(&[0, 1]));
        assert!(!r.contains(&[4, 1]));
    }

    #[test]
    fn region_iteration_order() {
        let r = BoxRegion::new([0u64, 0], [1u64, 1]);
        let cells = r.cells_vec();
        assert_eq!(cells, vec![vec![0, 0], vec![1, 0], vec![0, 1], vec![1, 1]]);
    }

    #[test]
    fn beam_region() {
        let g = GridSpec::new([5u64, 3, 2]);
        let b = BoxRegion::beam(&g, 1, &[2, 0, 1]);
        assert_eq!(b.cells(), 3);
        assert_eq!(b.lo(), &[2, 0, 1]);
        assert_eq!(b.hi(), &[2, 2, 1]);
        assert!(b.fits(&g));
    }

    #[test]
    fn dim0_runs_cover_region() {
        let r = BoxRegion::new([1u64, 0, 2], [3u64, 2, 3]);
        let mut total = 0u64;
        let mut runs = 0;
        r.for_each_dim0_run(|start, len| {
            assert_eq!(start[0], 1);
            assert_eq!(len, 3);
            total += len;
            runs += 1;
        });
        assert_eq!(total, r.cells());
        assert_eq!(runs, 6);
    }

    #[test]
    fn one_dimensional_region_is_one_run() {
        let r = BoxRegion::new([4u64], [9u64]);
        let mut runs = Vec::new();
        r.for_each_dim0_run(|s, l| runs.push((s.to_vec(), l)));
        assert_eq!(runs, vec![(vec![4], 6)]);
    }

    #[test]
    fn point_region() {
        let p = BoxRegion::point([3u64, 1]);
        assert_eq!(p.cells(), 1);
        assert!(p.contains(&[3, 1]));
    }
}
