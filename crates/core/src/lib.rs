//! # multimap-core — the MultiMap mapping algorithm and its baselines
//!
//! Reproduction of the data-placement algorithms evaluated in *MultiMap:
//! Preserving disk locality for multidimensional datasets* (Shao et al.,
//! ICDE 2007):
//!
//! * [`MultiMapping`] — the paper's contribution: maps `Dim0` along disk
//!   tracks (full streaming bandwidth) and every other dimension along
//!   sequences of adjacent blocks (semi-sequential access, no rotational
//!   latency), tiled into *basic cubes* that satisfy Equations 1–3.
//! * [`NaiveMapping`] — row-major linearisation.
//! * [`CurveMapping`] with Z-order / Hilbert / Gray curves — the
//!   space-filling-curve baselines.
//!
//! All mappings implement the [`Mapping`] trait, so the query layer
//! (`multimap-query`) treats them uniformly.
//!
//! ```
//! use multimap_core::{GridSpec, Mapping, MultiMapping};
//! use multimap_disksim::profiles;
//!
//! let geom = profiles::toy(); // the paper's running example: T=5, D=9
//! let m = MultiMapping::new(&geom, GridSpec::new([5u64, 3, 3])).unwrap();
//! // Dim0 is sequential on a track:
//! assert_eq!(
//!     m.lbn_of(&[1, 0, 0]).unwrap(),
//!     m.lbn_of(&[0, 0, 0]).unwrap() + 1
//! );
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod advisor;
pub mod chunking;
pub mod curve_map;
pub mod grid;
pub mod loader;
pub mod mapping;
pub mod multimap;
pub mod naive;
pub mod translation;
pub mod updates;

pub use advisor::{advise, build_advised, Advice, AdvisorConfig};
pub use chunking::ChunkedDataset;
pub use curve_map::{gray_mapping, hilbert_mapping, zorder_mapping, CurveMapping};
pub use grid::{BoxRegion, Coord, GridSpec};
pub use loader::{append_slab, bulk_load, load_region, write_schedule, LoadReport};
pub use mapping::{Mapping, MappingError, MappingKind, Result};
pub use multimap::{
    max_dimensions, solve_basic_cube, BasicCubeShape, CubeLayout, MultiMapOptions, MultiMapping,
    ShapeConstraints, ZonedMultiMapping,
};
pub use naive::NaiveMapping;
pub use translation::{
    shared_cache, FlatTranslation, TranslationCache, TranslationKey, MIN_CACHED_LOOKUPS,
};
pub use updates::{CellStore, UpdateConfig, UpdateStats};
