//! Mapping-translation cache: flat cell→LBN tables for hot query paths.
//!
//! Every executor in the workspace ultimately funnels through
//! [`Mapping::lbn_of`], and for MultiMap that translation walks the
//! basic-cube layout arithmetic per cell. Large range queries translate
//! hundreds of thousands of cells per run, and benchmark sweeps repeat
//! the same grids across figures. This module precomputes a mapping's
//! entire cell→LBN table **once** into a [`FlatTranslation`] — a dense
//! row-major vector indexed by [`GridSpec::linear_index`] — and keeps
//! recently used tables in a small process-wide LRU ([`TranslationCache`])
//! keyed by a structural fingerprint of the mapping.
//!
//! The cache is transparent: a cached lookup is pinned to the direct
//! trait computation by construction (the table *is* the mapping's own
//! `lbn_of` output) and by property tests over random grids for all four
//! mapping families.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use multimap_disksim::Lbn;

use crate::grid::{Coord, GridSpec};
use crate::mapping::{Mapping, MappingError, MappingKind, Result};

/// Minimum number of lookups a caller should expect to perform before a
/// flat table pays for itself. Building costs one `lbn_of` per **grid**
/// cell, so tiny queries (beam queries touch `S_i` cells) should keep
/// calling the trait directly; large range queries and repeated sweeps
/// amortise the build across at least this many lookups.
pub const MIN_CACHED_LOOKUPS: u64 = 4096;

/// Number of pseudo-random probe cells folded into a
/// [`TranslationKey`] fingerprint (in addition to the first and last
/// cell).
const KEY_PROBES: u64 = 16;

/// A dense, precomputed cell→LBN table for one mapping instance.
///
/// The table is row-major with dimension 0 varying fastest, i.e. indexed
/// by [`GridSpec::linear_index`], so a lookup is one multiply-free index
/// computation plus a vector read — no per-cell layout arithmetic.
#[derive(Clone, Debug)]
pub struct FlatTranslation {
    grid: GridSpec,
    cell_blocks: u64,
    table: Vec<Lbn>,
}

impl FlatTranslation {
    /// Precompute the full cell→LBN table of `mapping`.
    ///
    /// Costs one [`Mapping::lbn_of`] call per grid cell; fails if any
    /// cell fails to translate (an injective mapping never does).
    pub fn build(mapping: &dyn Mapping) -> Result<Self> {
        let grid = mapping.grid().clone();
        let cells = grid.cells() as usize;
        let mut table = Vec::with_capacity(cells);
        let mut first_err: Option<MappingError> = None;
        grid.for_each_cell(|coord| {
            if first_err.is_some() {
                return;
            }
            match mapping.lbn_of(coord) {
                Ok(lbn) => table.push(lbn),
                Err(e) => first_err = Some(e),
            }
        });
        match first_err {
            Some(e) => Err(e),
            None => Ok(FlatTranslation {
                grid,
                cell_blocks: mapping.cell_blocks(),
                table,
            }),
        }
    }

    /// The grid this table translates.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Blocks each cell occupies (mirrors [`Mapping::cell_blocks`]).
    pub fn cell_blocks(&self) -> u64 {
        self.cell_blocks
    }

    /// First LBN of the cell at `coord` — same contract as
    /// [`Mapping::lbn_of`], served from the precomputed table.
    pub fn lbn_of(&self, coord: &[u64]) -> Result<Lbn> {
        if !self.grid.contains(coord) {
            return Err(MappingError::CoordOutOfGrid {
                coord: coord.to_vec(),
            });
        }
        let idx = self.grid.linear_index(coord) as usize;
        match self.table.get(idx) {
            Some(&lbn) => Ok(lbn),
            None => Err(MappingError::CoordOutOfGrid {
                coord: coord.to_vec(),
            }),
        }
    }

    /// Cell whose block range contains `lbn`, by scanning the table.
    ///
    /// Linear in the number of cells; exists for conformance checks, not
    /// hot paths (use [`Mapping::coord_of`] for those).
    pub fn coord_of(&self, lbn: Lbn) -> Option<Coord> {
        let idx = self
            .table
            .iter()
            .position(|&base| base <= lbn && lbn < base + self.cell_blocks)?;
        self.grid.coord_of_linear(idx as u64)
    }

    /// Number of table entries (equals `grid().cells()`).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (never true for a valid grid).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

/// Structural fingerprint identifying a mapping instance for cache
/// lookup.
///
/// Two mappings with equal keys agree on their name, family, grid shape,
/// cell size, total span, and the translated LBNs of the first cell, the
/// last cell, and [`KEY_PROBES`] deterministically sampled interior
/// cells. Mappings in this workspace are pure functions of their
/// construction parameters, so agreement on all of those pins the whole
/// table in practice; the property tests in this module and in the
/// conformance crate back that assumption empirically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TranslationKey {
    name: String,
    kind: MappingKind,
    extents: Vec<u64>,
    cell_blocks: u64,
    blocks_spanned: u64,
    probes: Vec<Lbn>,
}

impl TranslationKey {
    /// Fingerprint `mapping` with a handful of `lbn_of` probes.
    pub fn of(mapping: &dyn Mapping) -> Result<Self> {
        let grid = mapping.grid();
        let cells = grid.cells();
        let mut probes = Vec::with_capacity(KEY_PROBES as usize + 2);
        let mut probe = |idx: u64| -> Result<()> {
            if let Some(coord) = grid.coord_of_linear(idx) {
                probes.push(mapping.lbn_of(&coord)?);
            }
            Ok(())
        };
        probe(0)?;
        probe(cells - 1)?;
        // Deterministic LCG walk over the linear index space.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..KEY_PROBES {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            probe(x % cells)?;
        }
        Ok(TranslationKey {
            name: mapping.name().to_string(),
            kind: mapping.kind(),
            extents: grid.extents().to_vec(),
            cell_blocks: mapping.cell_blocks(),
            blocks_spanned: mapping.blocks_spanned(),
            probes,
        })
    }
}

/// A small LRU of recently built [`FlatTranslation`] tables, shared
/// across threads.
///
/// Capacity is a handful of grids — benchmark sweeps cycle through at
/// most a few (drive × mapping) combinations at a time, and one table
/// for the paper-scale grid is a few MiB.
#[derive(Debug)]
pub struct TranslationCache {
    entries: Mutex<Vec<(TranslationKey, Arc<FlatTranslation>)>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TranslationCache {
    /// Default number of tables retained.
    pub const DEFAULT_CAPACITY: usize = 8;

    /// An empty cache holding at most `capacity` tables.
    ///
    /// A capacity of zero means *caching disabled*: every lookup builds
    /// a fresh table, counts as a miss, and nothing is ever retained.
    /// (Earlier versions silently clamped 0 to 1, so a caller asking
    /// for "no caching" got a one-entry cache instead — surprising under
    /// memory pressure and impossible to express otherwise.)
    pub fn new(capacity: usize) -> Self {
        TranslationCache {
            entries: Mutex::new(Vec::new()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The flat table for `mapping`, built on first use and served from
    /// the LRU afterwards (most-recently-used entries are kept).
    pub fn translate(&self, mapping: &dyn Mapping) -> Result<Arc<FlatTranslation>> {
        Ok(self.translate_tracked(mapping)?.0)
    }

    /// [`TranslationCache::translate`] reporting whether this lookup was
    /// served from a retained table (`true`) or built one (`false`) —
    /// the per-query signal a caller-local telemetry sink records,
    /// where the process-wide [`TranslationCache::hits`] counters would
    /// be racy deltas under a parallel sweep.
    pub fn translate_tracked(&self, mapping: &dyn Mapping) -> Result<(Arc<FlatTranslation>, bool)> {
        if self.capacity == 0 {
            // Caching disabled: pure pass-through. Every lookup builds
            // and is a miss; no key probing, no lock traffic.
            let table = Arc::new(FlatTranslation::build(mapping)?);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok((table, false));
        }
        let key = TranslationKey::of(mapping)?;
        {
            let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(pos) = entries.iter().position(|(k, _)| *k == key) {
                let entry = entries.remove(pos);
                let table = Arc::clone(&entry.1);
                entries.insert(0, entry);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((table, true));
            }
        }
        // Build outside the lock: concurrent first-touch of the same grid
        // may build twice, but never blocks other grids' lookups.
        let table = Arc::new(FlatTranslation::build(mapping)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(pos) = entries.iter().position(|(k, _)| *k == key) {
            // Another thread finished the same build first; adopt theirs.
            // Still a miss for the caller: it paid for a build.
            let entry = entries.remove(pos);
            let table = Arc::clone(&entry.1);
            entries.insert(0, entry);
            return Ok((table, false));
        }
        entries.insert(0, (key, Arc::clone(&table)));
        entries.truncate(self.capacity);
        Ok((table, false))
    }

    /// Number of tables currently retained.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the cache holds no tables.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every retained table (counters are preserved).
    pub fn clear(&self) {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// Lookups served from a retained table.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build a table.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl Default for TranslationCache {
    fn default() -> Self {
        TranslationCache::new(Self::DEFAULT_CAPACITY)
    }
}

/// The process-wide cache used by the query executors and the
/// conformance harness.
pub fn shared_cache() -> &'static TranslationCache {
    static SHARED: OnceLock<TranslationCache> = OnceLock::new();
    SHARED.get_or_init(TranslationCache::default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve_map::{gray_mapping, hilbert_mapping, zorder_mapping};
    use crate::multimap::MultiMapping;
    use crate::naive::NaiveMapping;
    use multimap_disksim::profiles;
    use proptest::prelude::*;

    fn check_table_matches(mapping: &dyn Mapping) {
        let flat = FlatTranslation::build(mapping).unwrap();
        assert_eq!(flat.len() as u64, mapping.grid().cells());
        mapping.grid().for_each_cell(|coord| {
            assert_eq!(
                flat.lbn_of(coord).unwrap(),
                mapping.lbn_of(coord).unwrap(),
                "cached translation diverged at {coord:?} for {}",
                mapping.name()
            );
        });
    }

    #[test]
    fn flat_table_matches_direct_translation_all_mappings() {
        let grid = GridSpec::new([6u64, 4, 3]);
        let geom = profiles::small();
        check_table_matches(&NaiveMapping::new(grid.clone(), 7));
        check_table_matches(&zorder_mapping(grid.clone(), 11, 2).unwrap());
        check_table_matches(&hilbert_mapping(grid.clone(), 0, 1).unwrap());
        check_table_matches(&gray_mapping(grid.clone(), 3, 1).unwrap());
        check_table_matches(&MultiMapping::new(&geom, grid).unwrap());
    }

    #[test]
    fn flat_table_rejects_out_of_grid() {
        let m = NaiveMapping::new(GridSpec::new([4u64, 4]), 0);
        let flat = FlatTranslation::build(&m).unwrap();
        assert!(flat.lbn_of(&[4, 0]).is_err());
        assert!(flat.lbn_of(&[0]).is_err());
        assert!(!flat.is_empty());
        assert_eq!(flat.cell_blocks(), 1);
        assert_eq!(flat.grid().cells(), 16);
    }

    #[test]
    fn flat_coord_of_inverts_lbn_of() {
        let m = zorder_mapping(GridSpec::new([4u64, 4]), 100, 2).unwrap();
        let flat = FlatTranslation::build(&m).unwrap();
        m.grid().for_each_cell(|coord| {
            let lbn = flat.lbn_of(coord).unwrap();
            assert_eq!(flat.coord_of(lbn).as_deref(), Some(coord));
            assert_eq!(flat.coord_of(lbn + 1).as_deref(), Some(coord));
        });
        assert_eq!(flat.coord_of(99), None);
    }

    #[test]
    fn cache_hits_on_equal_mappings_and_evicts_lru() {
        let cache = TranslationCache::new(2);
        let a = NaiveMapping::new(GridSpec::new([8u64, 8]), 0);
        let a2 = NaiveMapping::new(GridSpec::new([8u64, 8]), 0);
        let b = NaiveMapping::new(GridSpec::new([8u64, 8]), 64); // different base
        let c = NaiveMapping::new(GridSpec::new([4u64, 4]), 0);

        let t1 = cache.translate(&a).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let t2 = cache.translate(&a2).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(&t1, &t2), "equal mappings must share a table");

        cache.translate(&b).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        cache.translate(&c).unwrap(); // evicts `a` (LRU, capacity 2)
        assert_eq!(cache.len(), 2);
        let t3 = cache.translate(&a).unwrap();
        assert_eq!(cache.misses(), 4, "evicted table must rebuild");
        assert!(!Arc::ptr_eq(&t1, &t3));

        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn zero_capacity_means_caching_disabled() {
        let cache = TranslationCache::new(0);
        let m = NaiveMapping::new(GridSpec::new([8u64, 8]), 0);
        let t1 = cache.translate(&m).unwrap();
        let t2 = cache.translate(&m).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2), "every lookup builds");
        assert!(
            !Arc::ptr_eq(&t1, &t2),
            "nothing is retained, so repeat lookups build fresh tables"
        );
        assert!(cache.is_empty(), "a disabled cache never stores entries");
        // The tables are still correct, just not shared.
        assert_eq!(t1.lbn_of(&[0, 0]).unwrap(), t2.lbn_of(&[0, 0]).unwrap());
    }

    #[test]
    fn shared_cache_is_usable() {
        let m = NaiveMapping::new(GridSpec::new([3u64, 3, 3]), 12345);
        let t = shared_cache().translate(&m).unwrap();
        assert_eq!(t.lbn_of(&[0, 0, 0]).unwrap(), 12345);
    }

    /// Random small grids (2–4 dims, bounded cell count).
    fn arb_grid() -> impl Strategy<Value = GridSpec> {
        proptest::collection::vec(1u64..7, 2..5).prop_map(GridSpec::new)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Satellite (c): the cached cell→LBN table is pinned to the
        /// direct `Mapping` computation on random grids for all four
        /// mapping families.
        #[test]
        fn cached_tables_match_direct_on_random_grids(
            grid in arb_grid(),
            base in 0u64..1000,
            cell_blocks in 1u64..4,
        ) {
            let mappings: Vec<Box<dyn Mapping>> = vec![
                Box::new(NaiveMapping::new(grid.clone(), base)),
                Box::new(zorder_mapping(grid.clone(), base, cell_blocks).unwrap()),
                Box::new(hilbert_mapping(grid.clone(), base, cell_blocks).unwrap()),
                Box::new(gray_mapping(grid.clone(), base, cell_blocks).unwrap()),
            ];
            for m in &mappings {
                let flat = FlatTranslation::build(m.as_ref()).unwrap();
                let mut failure = None;
                grid.for_each_cell(|coord| {
                    if failure.is_some() {
                        return;
                    }
                    let direct = m.lbn_of(coord);
                    let cached = flat.lbn_of(coord);
                    if direct != cached {
                        failure = Some((coord.to_vec(), direct, cached));
                    }
                });
                prop_assert!(
                    failure.is_none(),
                    "{} diverged: {failure:?}", m.name()
                );
            }
            // MultiMap needs a drive geometry; small grids always fit.
            let geom = profiles::small();
            if let Ok(mm) = MultiMapping::new(&geom, grid.clone()) {
                let flat = FlatTranslation::build(&mm).unwrap();
                let mut ok = true;
                grid.for_each_cell(|coord| {
                    ok &= flat.lbn_of(coord).ok() == mm.lbn_of(coord).ok();
                });
                prop_assert!(ok, "MultiMap cached table diverged");
            }
        }
    }
}
