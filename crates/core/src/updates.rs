//! Online updates: fill factors and overflow pages (Section 4.6).
//!
//! MultiMap handles updates like any linearised mapping: the initial bulk
//! load leaves a tunable fraction of each cell empty (the *fill factor*);
//! later inserts go to the destination cell while it has space and spill
//! into chained *overflow pages* otherwise. Underflowing cells are
//! flagged for reorganisation once they drop below a tunable threshold.

use std::collections::BTreeMap;

use multimap_disksim::Lbn;

/// Tunables for the update path.
#[derive(Clone, Copy, Debug)]
pub struct UpdateConfig {
    /// Points a full cell can hold.
    pub cell_capacity: u32,
    /// Fraction of each cell filled at bulk load, in `(0, 1]`.
    pub fill_factor: f64,
    /// Occupancy fraction below which a cell is flagged for
    /// reorganisation.
    pub reclaim_threshold: f64,
}

impl Default for UpdateConfig {
    fn default() -> Self {
        UpdateConfig {
            cell_capacity: 64,
            fill_factor: 0.8,
            reclaim_threshold: 0.25,
        }
    }
}

/// Counters describing update activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Inserts that fit in the destination cell.
    pub direct_inserts: u64,
    /// Inserts that spilled to an overflow page.
    pub overflow_inserts: u64,
    /// Overflow pages allocated.
    pub overflow_pages: u64,
    /// Deletes applied.
    pub deletes: u64,
}

/// Per-cell occupancy tracking with overflow chains.
///
/// Cells are identified by their linear index in the dataset grid; the
/// mapping layer translates indices to LBNs, so this structure stays
/// mapping-agnostic (as the paper notes, updates work "just like existing
/// linear mapping techniques").
#[derive(Clone, Debug)]
pub struct CellStore {
    config: UpdateConfig,
    /// Points currently stored per cell (primary page only).
    occupancy: BTreeMap<u64, u32>,
    /// Overflow chains per cell, plus points in the last page.
    overflow: BTreeMap<u64, (Vec<Lbn>, u32)>,
    /// Bump allocator for overflow pages.
    next_overflow: Lbn,
    stats: UpdateStats,
}

impl CellStore {
    /// Create a store whose overflow pages are allocated from
    /// `overflow_base` upward.
    ///
    /// # Panics
    /// Panics if the configuration is out of range.
    pub fn new(config: UpdateConfig, overflow_base: Lbn) -> Self {
        assert!(config.cell_capacity > 0, "cell capacity must be positive");
        assert!(
            config.fill_factor > 0.0 && config.fill_factor <= 1.0,
            "fill factor must be in (0, 1]"
        );
        assert!(
            (0.0..1.0).contains(&config.reclaim_threshold),
            "reclaim threshold must be in [0, 1)"
        );
        CellStore {
            config,
            occupancy: BTreeMap::new(),
            overflow: BTreeMap::new(),
            next_overflow: overflow_base,
            stats: UpdateStats::default(),
        }
    }

    /// Initial points per cell at bulk load.
    pub fn bulk_load_points(&self) -> u32 {
        ((self.config.cell_capacity as f64 * self.config.fill_factor).floor() as u32)
            .clamp(1, self.config.cell_capacity)
    }

    /// Bulk-load a cell at its fill factor.
    pub fn bulk_load(&mut self, cell: u64) {
        self.occupancy.insert(cell, self.bulk_load_points());
    }

    /// Points currently in the cell (primary + overflow).
    pub fn points(&self, cell: u64) -> u64 {
        let primary = *self.occupancy.get(&cell).unwrap_or(&0) as u64;
        let over = self
            .overflow
            .get(&cell)
            .map(|(pages, last)| {
                (pages.len().saturating_sub(1)) as u64 * self.config.cell_capacity as u64
                    + *last as u64
            })
            .unwrap_or(0);
        primary + over
    }

    /// Insert one point into `cell`; allocates an overflow page when the
    /// cell (and its last overflow page) are full.
    pub fn insert(&mut self, cell: u64) {
        let occ = self.occupancy.entry(cell).or_insert(0);
        if *occ < self.config.cell_capacity {
            *occ += 1;
            self.stats.direct_inserts += 1;
            return;
        }
        self.stats.overflow_inserts += 1;
        let cap = self.config.cell_capacity;
        let (pages, last) = self
            .overflow
            .entry(cell)
            .or_insert_with(|| (Vec::new(), cap));
        if pages.is_empty() || *last == cap {
            pages.push(self.next_overflow);
            self.next_overflow += 1;
            self.stats.overflow_pages += 1;
            *last = 0;
        }
        *last += 1;
    }

    /// Delete one point from the cell's primary page (no-op when empty).
    pub fn delete(&mut self, cell: u64) {
        if let Some(occ) = self.occupancy.get_mut(&cell) {
            if *occ > 0 {
                *occ -= 1;
                self.stats.deletes += 1;
            }
        }
    }

    /// Extra LBNs a query must read for this cell (its overflow chain).
    pub fn overflow_lbns(&self, cell: u64) -> &[Lbn] {
        self.overflow
            .get(&cell)
            .map(|(pages, _)| pages.as_slice())
            .unwrap_or(&[])
    }

    /// Cells whose primary occupancy has fallen below the reclaim
    /// threshold — candidates for the (expensive) reorganisation pass.
    /// The B-tree walk already yields ascending cell indices.
    pub fn underflowing_cells(&self) -> Vec<u64> {
        let limit = self.config.cell_capacity as f64 * self.config.reclaim_threshold;
        self.occupancy
            .iter()
            .filter(|(_, &occ)| (occ as f64) < limit)
            .map(|(&c, _)| c)
            .collect()
    }

    /// Update counters so far.
    pub fn stats(&self) -> UpdateStats {
        self.stats
    }

    /// The LBN the next overflow page would take (monotone bump
    /// allocator) — lets callers enforce a space budget.
    pub fn next_overflow_lbn(&self) -> Lbn {
        self.next_overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> CellStore {
        CellStore::new(
            UpdateConfig {
                cell_capacity: 4,
                fill_factor: 0.5,
                reclaim_threshold: 0.3,
            },
            1_000_000,
        )
    }

    #[test]
    fn bulk_load_respects_fill_factor() {
        let mut s = store();
        s.bulk_load(7);
        assert_eq!(s.points(7), 2); // 4 * 0.5
    }

    #[test]
    fn inserts_fill_then_overflow() {
        let mut s = store();
        s.bulk_load(1);
        s.insert(1);
        s.insert(1); // now full (4)
        assert_eq!(s.points(1), 4);
        assert!(s.overflow_lbns(1).is_empty());
        s.insert(1); // overflow page 1
        assert_eq!(s.overflow_lbns(1), &[1_000_000]);
        assert_eq!(s.points(1), 5);
        // Fill the overflow page, then a second page appears.
        for _ in 0..4 {
            s.insert(1);
        }
        assert_eq!(s.overflow_lbns(1), &[1_000_000, 1_000_001]);
        assert_eq!(s.points(1), 9);
        let st = s.stats();
        assert_eq!(st.direct_inserts, 2);
        assert_eq!(st.overflow_inserts, 5);
        assert_eq!(st.overflow_pages, 2);
    }

    #[test]
    fn deletes_trigger_reclaim_flag() {
        let mut s = store();
        s.bulk_load(3);
        s.bulk_load(4);
        s.delete(3);
        s.delete(3); // occupancy 0 < 4*0.3
        assert_eq!(s.underflowing_cells(), vec![3]);
        assert_eq!(s.stats().deletes, 2);
        // Deleting an empty cell is a no-op.
        s.delete(3);
        assert_eq!(s.stats().deletes, 2);
    }

    #[test]
    fn separate_cells_do_not_interfere() {
        let mut s = store();
        for _ in 0..6 {
            s.insert(10);
        }
        assert_eq!(s.points(11), 0);
        assert!(s.overflow_lbns(11).is_empty());
        assert_eq!(s.points(10), 6);
    }

    #[test]
    #[should_panic(expected = "fill factor")]
    fn invalid_fill_factor_panics() {
        let _ = CellStore::new(
            UpdateConfig {
                cell_capacity: 4,
                fill_factor: 0.0,
                reclaim_threshold: 0.3,
            },
            0,
        );
    }
}
