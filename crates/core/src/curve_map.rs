//! Space-filling-curve mappings (Z-order, Hilbert, Gray-coded).
//!
//! Following the paper's implementation (Section 5.2): the cells of the
//! dataset are ordered by their curve value and then "stored sequentially
//! on disks". Because dataset extents are rarely powers of two, the curve
//! is computed over the enclosing power-of-two hypercube and occupied
//! cells are *rank-compacted*: the cell with the k-th smallest curve
//! value lands at `base_lbn + k * cell_blocks`, with no holes.

use multimap_disksim::Lbn;
use multimap_sfc::{bits_for_extent, GrayCurve, HilbertCurve, SpaceFillingCurve, ZCurve};

use crate::grid::{Coord, GridSpec};
use crate::mapping::{Mapping, MappingError, MappingKind, Result};

pub use multimap_sfc::curve::bits_for_extent as curve_bits_for_extent;

/// A linearised mapping driven by any [`SpaceFillingCurve`].
///
/// Holds a sorted table of the curve keys of all occupied cells (8 bytes
/// per cell) so that `lbn_of` is a binary search and `coord_of` is an
/// array lookup plus curve decode.
pub struct CurveMapping<C: SpaceFillingCurve> {
    name: String,
    grid: GridSpec,
    base_lbn: Lbn,
    cell_blocks: u64,
    curve: C,
    /// Curve keys of all cells of the grid, sorted ascending.
    keys: Vec<u64>,
}

impl<C: SpaceFillingCurve> CurveMapping<C> {
    /// Order the cells of `grid` by `curve` and pack them from `base_lbn`.
    ///
    /// The curve must have at least `bits_for_extent(max extent)` bits per
    /// dimension and exactly `grid.ndims()` dimensions.
    pub fn new(
        name: impl Into<String>,
        grid: GridSpec,
        base_lbn: Lbn,
        cell_blocks: u64,
        curve: C,
    ) -> Result<Self> {
        assert!(cell_blocks > 0, "cells must occupy at least one block");
        if curve.dims() != grid.ndims() {
            return Err(MappingError::DoesNotFit {
                reason: format!(
                    "curve has {} dims but grid has {}",
                    curve.dims(),
                    grid.ndims()
                ),
            });
        }
        let needed = grid
            .extents()
            .iter()
            .map(|&e| bits_for_extent(e))
            .max()
            .unwrap_or(1);
        if curve.bits() < needed {
            return Err(MappingError::DoesNotFit {
                reason: format!(
                    "curve order {} too small for extents (need {needed})",
                    curve.bits()
                ),
            });
        }
        let cells = grid.cells();
        if cells > (1 << 31) {
            return Err(MappingError::DoesNotFit {
                reason: format!("rank table for {cells} cells would be too large"),
            });
        }
        let mut keys = Vec::with_capacity(cells as usize);
        grid.for_each_cell(|c| {
            // Safe: every grid cell is within curve range (checked above).
            keys.push(curve.index(c));
        });
        keys.sort_unstable();
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "curve not injective");
        Ok(CurveMapping {
            name: name.into(),
            grid,
            base_lbn,
            cell_blocks,
            curve,
            keys,
        })
    }

    /// The first LBN of the mapping.
    #[inline]
    pub fn base_lbn(&self) -> Lbn {
        self.base_lbn
    }

    /// The sorted curve keys of all occupied cells (ascending, one per
    /// cell). Exposed for static analysis: strict ascent of this table,
    /// together with the rank-based `lbn_of`/`coord_of` construction,
    /// proves the mapping is a bijection onto its dense LBN range.
    #[inline]
    pub fn curve_keys(&self) -> &[u64] {
        &self.keys
    }

    /// Rank of a cell among all cells, by curve value.
    pub fn rank_of(&self, coord: &[u64]) -> Result<u64> {
        if !self.grid.contains(coord) {
            return Err(MappingError::CoordOutOfGrid {
                coord: coord.to_vec(),
            });
        }
        let key = self.curve.index(coord);
        let pos = self.keys.partition_point(|&k| k < key);
        debug_assert!(self.keys[pos] == key);
        Ok(pos as u64)
    }
}

impl<C: SpaceFillingCurve + Send + Sync> Mapping for CurveMapping<C> {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> MappingKind {
        MappingKind::SpaceFillingCurve
    }

    fn grid(&self) -> &GridSpec {
        &self.grid
    }

    fn cell_blocks(&self) -> u64 {
        self.cell_blocks
    }

    fn lbn_of(&self, coord: &[u64]) -> Result<Lbn> {
        Ok(self.base_lbn + self.rank_of(coord)? * self.cell_blocks)
    }

    fn coord_of(&self, lbn: Lbn) -> Option<Coord> {
        let rel = lbn.checked_sub(self.base_lbn)?;
        let rank = (rel / self.cell_blocks) as usize;
        let key = *self.keys.get(rank)?;
        Some(self.curve.coords(key))
    }

    fn blocks_spanned(&self) -> u64 {
        self.grid.cells() * self.cell_blocks
    }
}

/// Z-order mapping of `grid` starting at `base_lbn`.
pub fn zorder_mapping(
    grid: GridSpec,
    base_lbn: Lbn,
    cell_blocks: u64,
) -> Result<CurveMapping<ZCurve>> {
    let bits = max_bits(&grid);
    let curve = ZCurve::new(grid.ndims(), bits).map_err(curve_err)?;
    CurveMapping::new("Z-order", grid, base_lbn, cell_blocks, curve)
}

/// Hilbert mapping of `grid` starting at `base_lbn`.
pub fn hilbert_mapping(
    grid: GridSpec,
    base_lbn: Lbn,
    cell_blocks: u64,
) -> Result<CurveMapping<HilbertCurve>> {
    let bits = max_bits(&grid);
    let curve = HilbertCurve::new(grid.ndims(), bits).map_err(curve_err)?;
    CurveMapping::new("Hilbert", grid, base_lbn, cell_blocks, curve)
}

/// Gray-coded-curve mapping of `grid` starting at `base_lbn`.
pub fn gray_mapping(
    grid: GridSpec,
    base_lbn: Lbn,
    cell_blocks: u64,
) -> Result<CurveMapping<GrayCurve>> {
    let bits = max_bits(&grid);
    let curve = GrayCurve::new(grid.ndims(), bits).map_err(curve_err)?;
    CurveMapping::new("Gray", grid, base_lbn, cell_blocks, curve)
}

fn max_bits(grid: &GridSpec) -> u32 {
    grid.extents()
        .iter()
        .map(|&e| bits_for_extent(e))
        .max()
        .unwrap_or(1)
}

fn curve_err(e: multimap_sfc::CurveError) -> MappingError {
    MappingError::DoesNotFit {
        reason: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_dense_and_injective() {
        let grid = GridSpec::new([5u64, 3, 4]);
        for m in [
            Box::new(zorder_mapping(grid.clone(), 10, 1).unwrap()) as Box<dyn Mapping>,
            Box::new(hilbert_mapping(grid.clone(), 10, 1).unwrap()),
            Box::new(gray_mapping(grid.clone(), 10, 1).unwrap()),
        ] {
            let mut seen = [false; 60];
            grid.for_each_cell(|c| {
                let l = m.lbn_of(c).unwrap();
                let rel = (l - 10) as usize;
                assert!(rel < 60, "{}: lbn {l} not dense", m.name());
                assert!(!seen[rel], "{}: collision", m.name());
                seen[rel] = true;
                assert_eq!(m.coord_of(l).unwrap(), c.to_vec(), "{}", m.name());
            });
            assert!(seen.iter().all(|&s| s));
            assert_eq!(m.blocks_spanned(), 60);
        }
    }

    #[test]
    fn hilbert_neighbours_in_rank_are_neighbours_in_space() {
        // Within a power-of-two grid, consecutive Hilbert ranks are unit
        // steps; the compacted non-power-of-two grid loses that, but the
        // full 4x4 grid keeps it.
        let grid = GridSpec::new([4u64, 4]);
        let m = hilbert_mapping(grid.clone(), 0, 1).unwrap();
        for rank in 0..15u64 {
            let a = m.coord_of(rank).unwrap();
            let b = m.coord_of(rank + 1).unwrap();
            let dist: u64 = a.iter().zip(&b).map(|(x, y)| x.abs_diff(*y)).sum();
            assert_eq!(dist, 1, "rank {rank}");
        }
    }

    #[test]
    fn cell_blocks_scale_lbns() {
        let grid = GridSpec::new([3u64, 3]);
        let m = zorder_mapping(grid, 0, 4).unwrap();
        let l = m.lbn_of(&[2, 2]).unwrap();
        assert_eq!(l % 4, 0);
        assert_eq!(m.coord_of(l + 3).unwrap(), vec![2, 2]);
        assert_eq!(m.blocks_spanned(), 36);
    }

    #[test]
    fn out_of_grid_rejected() {
        let m = hilbert_mapping(GridSpec::new([3u64, 3]), 0, 1).unwrap();
        assert!(m.lbn_of(&[3, 0]).is_err());
        assert!(m.coord_of(9).is_none());
    }

    #[test]
    fn z_order_of_power_of_two_grid_matches_raw_curve() {
        let grid = GridSpec::new([4u64, 4]);
        let m = zorder_mapping(grid.clone(), 0, 1).unwrap();
        let z = ZCurve::new(2, 2).unwrap();
        grid.for_each_cell(|c| {
            assert_eq!(m.lbn_of(c).unwrap(), z.index(c));
        });
    }
}
