//! Bulk loading (Section 4.6).
//!
//! "Observation-based applications … generate large amounts of new data
//! at regular intervals and append the new data to the existing database
//! in a bulk-load fashion. In such applications, MultiMap can be used to
//! allocate basic cubes to hold new points while preserving spatial
//! locality."
//!
//! The loader turns a region of cells into a write schedule (sorted by
//! LBN, coalesced into maximal sequential writes) and services it on a
//! simulated disk, reporting load time and effective bandwidth.

use multimap_disksim::{DiskSim, Lbn, Request, SECTOR_BYTES};

use crate::grid::BoxRegion;
use crate::mapping::{Mapping, MappingError, Result};

/// Outcome of a bulk load.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LoadReport {
    /// Cells written.
    pub cells: u64,
    /// Blocks written.
    pub blocks: u64,
    /// Write requests issued after coalescing.
    pub requests: u64,
    /// Total simulated write time.
    pub total_ms: f64,
}

impl LoadReport {
    /// Effective load bandwidth in MB/s.
    pub fn bandwidth_mb_s(&self) -> f64 {
        // staticcheck: allow(float-cmp) — sentinel: a zero-duration load reports zero bandwidth instead of dividing by zero.
        if self.total_ms == 0.0 {
            0.0
        } else {
            self.blocks as f64 * SECTOR_BYTES as f64 / 1e6 / (self.total_ms / 1000.0)
        }
    }
}

/// Build the coalesced, LBN-sorted write schedule for a region.
pub fn write_schedule(mapping: &dyn Mapping, region: &BoxRegion) -> Result<Vec<Request>> {
    if !region.fits(mapping.grid()) {
        return Err(MappingError::CoordOutOfGrid {
            coord: region.hi().to_vec(),
        });
    }
    let cell_blocks = mapping.cell_blocks();
    let mut lbns: Vec<Lbn> = Vec::with_capacity(region.cells().min(1 << 24) as usize);
    region.for_each_cell(|c| {
        // staticcheck: allow(no-unwrap) — region.fits(grid) was checked above, so every enumerated cell maps.
        lbns.push(mapping.lbn_of(c).expect("region cell maps"));
    });
    lbns.sort_unstable();
    // Coalesce into maximal sequential writes.
    let mut out = Vec::new();
    let mut iter = lbns.into_iter();
    let Some(first) = iter.next() else {
        return Ok(out);
    };
    let mut start = first;
    let mut len = cell_blocks;
    let mut expected = first + cell_blocks;
    for lbn in iter {
        if lbn == expected {
            len += cell_blocks;
        } else {
            out.push(Request::new(start, len));
            start = lbn;
            len = cell_blocks;
        }
        expected = lbn + cell_blocks;
    }
    out.push(Request::new(start, len));
    Ok(out)
}

/// Bulk-load an entire dataset onto the disk.
pub fn bulk_load(sim: &mut DiskSim, mapping: &dyn Mapping) -> Result<LoadReport> {
    load_region(sim, mapping, &mapping.grid().bounding_region())
}

/// Bulk-load one region (e.g. a freshly appended slab of observations).
pub fn load_region(
    sim: &mut DiskSim,
    mapping: &dyn Mapping,
    region: &BoxRegion,
) -> Result<LoadReport> {
    let schedule = write_schedule(mapping, region)?;
    let mut report = LoadReport {
        cells: region.cells(),
        ..LoadReport::default()
    };
    for req in &schedule {
        let t = sim
            .service_write(*req)
            // staticcheck: allow(no-unwrap) — write_schedule only emits LBNs the mapping itself produced, all on-disk.
            .expect("scheduled writes are on-disk");
        report.blocks += req.nblocks;
        report.requests += 1;
        report.total_ms += t.total_ms();
    }
    Ok(report)
}

/// Append the slab `dim = index` (one hyperplane of new observations),
/// as a time-series ingest would.
pub fn append_slab(
    sim: &mut DiskSim,
    mapping: &dyn Mapping,
    dim: usize,
    index: u64,
) -> Result<LoadReport> {
    let grid = mapping.grid();
    assert!(dim < grid.ndims(), "slab dimension out of range");
    if index >= grid.extent(dim) {
        return Err(MappingError::CoordOutOfGrid { coord: vec![index] });
    }
    let mut lo = vec![0u64; grid.ndims()];
    let mut hi: Vec<u64> = grid.extents().iter().map(|e| e - 1).collect();
    lo[dim] = index;
    hi[dim] = index;
    load_region(sim, mapping, &BoxRegion::new(lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;
    use crate::multimap::MultiMapping;
    use crate::naive::NaiveMapping;
    use multimap_disksim::profiles;

    fn setup() -> (DiskSim, GridSpec) {
        (
            DiskSim::new(profiles::small()),
            GridSpec::new([100u64, 8, 4]),
        )
    }

    #[test]
    fn naive_full_load_is_one_big_write() {
        let (mut sim, grid) = setup();
        let m = NaiveMapping::new(grid.clone(), 0);
        let report = bulk_load(&mut sim, &m).unwrap();
        assert_eq!(report.cells, grid.cells());
        assert_eq!(report.blocks, grid.cells());
        assert_eq!(report.requests, 1);
        assert!(report.bandwidth_mb_s() > 1.0);
    }

    #[test]
    fn multimap_full_load_coalesces_per_track_runs() {
        let (mut sim, grid) = setup();
        let m = MultiMapping::new(sim.geometry(), grid.clone()).unwrap();
        let report = bulk_load(&mut sim, &m).unwrap();
        assert_eq!(report.cells, grid.cells());
        // One run per track row (plus wraps): far fewer requests than
        // cells.
        assert!(report.requests < grid.cells() / 10);
        assert!(report.total_ms > 0.0);
    }

    #[test]
    fn slab_append_touches_one_hyperplane() {
        let (mut sim, grid) = setup();
        let m = MultiMapping::new(sim.geometry(), grid.clone()).unwrap();
        let report = append_slab(&mut sim, &m, 2, 3).unwrap();
        assert_eq!(report.cells, 100 * 8);
        assert!(append_slab(&mut sim, &m, 2, 99).is_err());
    }

    #[test]
    fn schedule_is_sorted_and_disjoint() {
        let (sim, grid) = setup();
        let m = MultiMapping::new(sim.geometry(), grid.clone()).unwrap();
        let schedule = write_schedule(&m, &BoxRegion::new([0u64, 0, 0], [99u64, 7, 3])).unwrap();
        for w in schedule.windows(2) {
            assert!(w[0].end() <= w[1].lbn, "overlapping or unsorted writes");
        }
        let total: u64 = schedule.iter().map(|r| r.nblocks).sum();
        assert_eq!(total, grid.cells());
    }

    #[test]
    fn oversized_region_rejected() {
        let (_, grid) = setup();
        let m = NaiveMapping::new(grid, 0);
        let bad = BoxRegion::new([0u64, 0, 0], [100u64, 7, 3]);
        assert!(write_schedule(&m, &bad).is_err());
    }
}
