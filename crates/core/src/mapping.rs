//! The mapping abstraction: placing grid cells onto disk blocks.

use std::fmt;

use multimap_disksim::Lbn;

use crate::grid::{Coord, GridSpec};

/// Which family a mapping belongs to — the query executor picks its
/// request-issuing strategy based on this (Section 5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MappingKind {
    /// Row-major linearisation (the paper's *Naive*).
    Naive,
    /// A space-filling-curve linearisation (Z-order, Hilbert, Gray).
    SpaceFillingCurve,
    /// MultiMap: adjacency-aware placement.
    MultiMap,
}

impl fmt::Display for MappingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingKind::Naive => write!(f, "naive"),
            MappingKind::SpaceFillingCurve => write!(f, "space-filling-curve"),
            MappingKind::MultiMap => write!(f, "multimap"),
        }
    }
}

/// Errors raised when constructing or evaluating a mapping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MappingError {
    /// The coordinate lies outside the dataset grid.
    CoordOutOfGrid {
        /// The offending coordinate.
        coord: Coord,
    },
    /// The dataset does not fit on the target device region.
    DoesNotFit {
        /// Human-readable reason.
        reason: String,
    },
    /// The basic-cube constraints (Eq. 1–3) cannot be satisfied.
    InfeasibleBasicCube {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::CoordOutOfGrid { coord } => {
                write!(f, "coordinate {coord:?} outside dataset grid")
            }
            MappingError::DoesNotFit { reason } => {
                write!(f, "dataset does not fit: {reason}")
            }
            MappingError::InfeasibleBasicCube { reason } => {
                write!(f, "no feasible basic cube: {reason}")
            }
        }
    }
}

impl std::error::Error for MappingError {}

/// Result alias for mapping operations.
pub type Result<T> = std::result::Result<T, MappingError>;

/// A placement of every cell of a [`GridSpec`] onto disk blocks of one
/// disk. Implementations must be injective: distinct cells map to
/// disjoint block ranges.
pub trait Mapping: Send + Sync {
    /// Short human-readable name ("Naive", "Z-order", …) used in figures.
    fn name(&self) -> &str;

    /// Which family this mapping belongs to.
    fn kind(&self) -> MappingKind;

    /// The dataset being mapped.
    fn grid(&self) -> &GridSpec;

    /// Blocks each cell occupies (1 unless configured otherwise).
    fn cell_blocks(&self) -> u64 {
        1
    }

    /// First LBN of the cell at `coord`.
    fn lbn_of(&self, coord: &[u64]) -> Result<Lbn>;

    /// Cell whose block range contains `lbn`, if any.
    fn coord_of(&self, lbn: Lbn) -> Option<Coord>;

    /// Total disk blocks spanned by the mapping, from its base LBN to one
    /// past its highest block (includes internal waste).
    fn blocks_spanned(&self) -> u64;

    /// Fraction of the spanned blocks actually holding cells, in `(0,1]`.
    fn space_utilization(&self) -> f64 {
        let used = self.grid().cells() * self.cell_blocks();
        used as f64 / self.blocks_spanned().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display() {
        assert_eq!(MappingKind::Naive.to_string(), "naive");
        assert_eq!(MappingKind::MultiMap.to_string(), "multimap");
        assert_eq!(
            MappingKind::SpaceFillingCurve.to_string(),
            "space-filling-curve"
        );
    }

    #[test]
    fn error_display() {
        let e = MappingError::CoordOutOfGrid { coord: vec![1, 2] };
        assert!(e.to_string().contains("[1, 2]"));
        let e = MappingError::DoesNotFit {
            reason: "too big".into(),
        };
        assert!(e.to_string().contains("too big"));
    }
}
