//! The *Naive* mapping: row-major linearisation along `Dim0`.
//!
//! Cells are laid out at consecutive LBNs with dimension 0 varying
//! fastest, so scans along `Dim0` are sequential and every other
//! dimension strides by the product of the lower extents (Section 1).

use multimap_disksim::Lbn;

use crate::grid::{Coord, GridSpec};
use crate::mapping::{Mapping, MappingError, MappingKind, Result};

/// Row-major linearised mapping starting at `base_lbn`.
#[derive(Clone, Debug)]
pub struct NaiveMapping {
    grid: GridSpec,
    base_lbn: Lbn,
    cell_blocks: u64,
}

impl NaiveMapping {
    /// Map `grid` row-major starting at `base_lbn`, one block per cell.
    pub fn new(grid: GridSpec, base_lbn: Lbn) -> Self {
        Self::with_cell_blocks(grid, base_lbn, 1)
    }

    /// Map `grid` row-major with `cell_blocks` blocks per cell.
    ///
    /// # Panics
    /// Panics if `cell_blocks` is zero.
    pub fn with_cell_blocks(grid: GridSpec, base_lbn: Lbn, cell_blocks: u64) -> Self {
        assert!(cell_blocks > 0, "cells must occupy at least one block");
        NaiveMapping {
            grid,
            base_lbn,
            cell_blocks,
        }
    }

    /// The first LBN of the mapping.
    #[inline]
    pub fn base_lbn(&self) -> Lbn {
        self.base_lbn
    }

    /// The LBN stride between consecutive cells of dimension `dim`.
    pub fn stride(&self, dim: usize) -> u64 {
        self.grid.extents()[..dim].iter().product::<u64>() * self.cell_blocks
    }
}

impl Mapping for NaiveMapping {
    fn name(&self) -> &str {
        "Naive"
    }

    fn kind(&self) -> MappingKind {
        MappingKind::Naive
    }

    fn grid(&self) -> &GridSpec {
        &self.grid
    }

    fn cell_blocks(&self) -> u64 {
        self.cell_blocks
    }

    fn lbn_of(&self, coord: &[u64]) -> Result<Lbn> {
        if !self.grid.contains(coord) {
            return Err(MappingError::CoordOutOfGrid {
                coord: coord.to_vec(),
            });
        }
        Ok(self.base_lbn + self.grid.linear_index(coord) * self.cell_blocks)
    }

    fn coord_of(&self, lbn: Lbn) -> Option<Coord> {
        let rel = lbn.checked_sub(self.base_lbn)?;
        self.grid.coord_of_linear(rel / self.cell_blocks)
    }

    fn blocks_spanned(&self) -> u64 {
        self.grid.cells() * self.cell_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_2d_layout() {
        // Figure 2's coordinates, ignoring physical placement: the naive
        // row-major order of a (5,3) grid.
        let m = NaiveMapping::new(GridSpec::new([5u64, 3]), 0);
        assert_eq!(m.lbn_of(&[0, 0]).unwrap(), 0);
        assert_eq!(m.lbn_of(&[4, 0]).unwrap(), 4);
        assert_eq!(m.lbn_of(&[0, 1]).unwrap(), 5);
        assert_eq!(m.lbn_of(&[4, 2]).unwrap(), 14);
    }

    #[test]
    fn strides() {
        let m = NaiveMapping::new(GridSpec::new([5u64, 3, 2]), 100);
        assert_eq!(m.stride(0), 1);
        assert_eq!(m.stride(1), 5);
        assert_eq!(m.stride(2), 15);
    }

    #[test]
    fn roundtrip_with_base_and_cell_blocks() {
        let m = NaiveMapping::with_cell_blocks(GridSpec::new([4u64, 3]), 1000, 4);
        let mut lbns = Vec::new();
        m.grid().clone().for_each_cell(|c| {
            let l = m.lbn_of(c).unwrap();
            assert!(l >= 1000);
            assert_eq!(m.coord_of(l).unwrap(), c.to_vec());
            // Interior blocks of the cell resolve to the same cell.
            assert_eq!(m.coord_of(l + 3).unwrap(), c.to_vec());
            lbns.push(l);
        });
        lbns.sort_unstable();
        lbns.dedup();
        assert_eq!(lbns.len(), 12);
        assert_eq!(m.blocks_spanned(), 48);
        assert_eq!(m.space_utilization(), 1.0);
    }

    #[test]
    fn rejects_out_of_grid() {
        let m = NaiveMapping::new(GridSpec::new([4u64, 3]), 0);
        assert!(m.lbn_of(&[4, 0]).is_err());
        assert!(m.coord_of(12).is_none());
    }
}
