//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace's structs carry serde derives for downstream users, but
//! this offline build has no crates.io access and nothing in-tree calls a
//! serde serializer (the conformance crate writes its own JSON). These
//! derives accept the annotated item and expand to nothing, so the
//! attributes stay source-compatible at zero cost.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
