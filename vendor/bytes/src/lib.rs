//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace uses: [`Bytes`] (cheaply cloneable
//! immutable view with `split_to`), [`BytesMut`] (growable buffer with
//! `put_*`, `resize`, `freeze`), and the [`Buf`] / [`BufMut`] traits for
//! little-endian u16 access.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Immutable, cheaply cloneable byte view.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty bytes.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into a new `Bytes`.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    /// View a static slice (copied; lifetimes don't matter for this
    /// stand-in's uses).
    pub fn from_static(src: &'static [u8]) -> Self {
        Bytes::copy_from_slice(src)
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split off and return the first `at` bytes, advancing `self` past
    /// them.
    ///
    /// # Panics
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        BytesMut { buf: vec![0; len] }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Resize to `len` bytes, filling with `fill`.
    pub fn resize(&mut self, len: usize, fill: u8) {
        self.buf.resize(len, fill);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

/// Read-side cursor operations.
pub trait Buf {
    /// Consume and return one little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
}

impl Buf for Bytes {
    fn get_u16_le(&mut self) -> u16 {
        let head = self.split_to(2);
        u16::from_le_bytes([head[0], head[1]])
    }
}

/// Write-side append operations.
pub trait BufMut {
    /// Append one little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u16_le(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u16_and_slices() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u16_le(0x4D4D);
        m.put_slice(&[1, 2, 3]);
        m.resize(8, 0);
        let mut b = m.freeze();
        assert_eq!(b.len(), 8);
        assert_eq!(b.get_u16_le(), 0x4D4D);
        let head = b.split_to(3);
        assert_eq!(head.as_ref(), &[1, 2, 3]);
        assert_eq!(b.as_ref(), &[0, 0, 0]);
    }

    #[test]
    fn split_shares_storage() {
        let mut b = Bytes::from(vec![9u8; 100]);
        let head = b.split_to(40);
        assert_eq!(head.len(), 40);
        assert_eq!(b.len(), 60);
        assert_eq!(head, Bytes::from(vec![9u8; 40]));
    }

    #[test]
    fn zeroed_and_index() {
        let mut m = BytesMut::zeroed(4);
        m[0] = 7;
        assert_eq!(m.as_ref(), &[7u8, 0, 0, 0][..]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversplit_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.split_to(2);
    }
}
