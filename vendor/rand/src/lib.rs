//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! pieces of `rand` the workspace actually uses are vendored here:
//! a deterministic xoshiro256++ [`rngs::StdRng`], [`SeedableRng`] with
//! `seed_from_u64`, and [`RngExt::random_range`] over integer and float
//! ranges. Sampling is deterministic for a given seed and call sequence,
//! which is exactly what the reproduction's seeded workloads need.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(draw)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every draw is valid.
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128) % span) as $t;
                lo.wrapping_add(draw)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: u64 = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.random_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = rng.random_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
            let i: i32 = rng.random_range(-4..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u64 = rng.random_range(5..5);
    }
}
