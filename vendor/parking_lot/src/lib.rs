//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` / `read()` / `write()` return guards directly, recovering the
//! inner value if a previous holder panicked.

#![warn(missing_docs)]

/// Mutual exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
