//! Offline stand-in for `criterion`.
//!
//! Keeps the `criterion_group!` / `criterion_main!` / `Criterion` /
//! `Bencher` surface so `cargo bench` compiles and runs without network
//! access. Measurement is a simple calibrated wall-clock loop printed as
//! mean ns/iter — no statistics, plots, or baselines.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup; sizes are accepted but all
/// batches run one routine call per setup in this stand-in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One routine call per batch.
    PerIteration,
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` on fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Register and immediately run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.target_time, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Parse CLI arguments; accepted and ignored by this stand-in.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run any deferred work; nothing to do in this stand-in.
    pub fn final_summary(&mut self) {}
}

/// Benchmarks sharing a common name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Register and immediately run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.criterion.target_time, f);
        self
    }

    /// Accepted for API compatibility; sampling is time-based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Bound the measurement time for benchmarks in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.target_time = t;
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, target: Duration, mut f: F) {
    // Calibrate: grow the iteration count until a probe run is long
    // enough to time meaningfully, then scale to the target time.
    let mut iters = 1u64;
    let mut probe;
    loop {
        probe = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut probe);
        if probe.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 8;
    }
    let per_iter = probe.elapsed.as_nanos().max(1) / probe.iters.max(1) as u128;
    let final_iters = ((target.as_nanos() / per_iter.max(1)) as u64).clamp(1, 10_000_000);
    let mut bench = Bencher {
        iters: final_iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bench);
    let mean_ns = bench.elapsed.as_nanos() as f64 / bench.iters.max(1) as f64;
    println!("{id:<48} {mean_ns:>12.1} ns/iter ({final_iters} iters)");
}

/// Bundle benchmark functions into a named group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion {
            target_time: Duration::from_millis(2),
        };
        let mut ran = false;
        c.bench_function("smoke/iter", |b| {
            ran = true;
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                x
            });
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_batched() {
        let mut c = Criterion {
            target_time: Duration::from_millis(2),
        };
        let mut group = c.benchmark_group("smoke");
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&b| b as u64).sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
    }
}
