//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the `proptest!` macro with
//! an optional `#![proptest_config(..)]` header, range and tuple
//! strategies, `prop_map`, `collection::vec`, and the `prop_assert*`
//! macros. Case generation is deterministic (seeded from the test path
//! and case index) and there is no shrinking: a failing case reports its
//! generated inputs via `Debug` and panics.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Value-generation strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Half-open bounds for a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                start: len,
                end: len + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "cannot sample empty range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "cannot sample empty range");
            SizeRange {
                start: *r.start(),
                end: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, 1..20)`-style constructor; the size argument is a
    /// length, `Range<usize>`, or `RangeInclusive<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Property-test entry point.
///
/// Supports an optional `#![proptest_config(ProptestConfig::with_cases(N))]`
/// header followed by `fn name(arg in strategy, ...) { body }` items. Each
/// body runs once per case inside a closure returning
/// `Result<(), TestCaseError>`, so `prop_assert*` early returns and
/// explicit `return Ok(())` both work.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategy = ($($strat,)+);
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let values =
                        $crate::strategy::Strategy::generate(&strategy, &mut rng);
                    let debugged = format!("{values:?}");
                    let ($($arg,)+) = values;
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest case {case}/{total} failed: {err}\n\
                             inputs {args} = {values}",
                            case = case,
                            total = config.cases,
                            err = err,
                            args = stringify!(($($arg),+)),
                            values = debugged,
                        );
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body, failing the case (not
/// the process) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`: {}",
            left,
            format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("bounds", 0);
        for _ in 0..2_000 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let w = (3usize..=7).generate(&mut rng);
            assert!((3..=7).contains(&w));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = (1u32..=3, 10u64..20).prop_map(|(a, b)| a as u64 * 100 + b);
        let mut rng = TestRng::deterministic("compose", 1);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            let (hundreds, rest) = (v / 100, v % 100);
            assert!((1..=3).contains(&hundreds));
            assert!((10..20).contains(&rest));
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let strat = crate::collection::vec(0u8..=255, 2..6);
        let mut rng = TestRng::deterministic("vec", 2);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let sample = |run: u32| -> Vec<u64> {
            let mut rng = TestRng::deterministic("same-seed", 7);
            let _ = run;
            (0..10).map(|_| (0u64..1_000_000).generate(&mut rng)).collect()
        };
        assert_eq!(sample(0), sample(1));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_checks(a in 0u64..100, b in 1u64..=4) {
            prop_assert!(a < 100);
            prop_assert!((1..=4).contains(&b));
            if a == 0 {
                return Ok(());
            }
            prop_assert_ne!(a + b, 0);
            prop_assert_eq!(a + b, b + a, "commutativity for a={}", a);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config_header(x in 0usize..8) {
            prop_assert!(x < 8);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            fn always_fails(v in 0u32..10) {
                prop_assert!(v > 1_000, "impossible bound");
            }
        }
        always_fails();
    }

    #[test]
    fn just_yields_constant() {
        let mut rng = TestRng::deterministic("just", 0);
        assert_eq!(Just(41).generate(&mut rng), 41);
    }
}
