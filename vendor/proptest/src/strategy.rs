//! The [`Strategy`] trait and the built-in strategies this workspace
//! uses: integer/float ranges, tuples, `Just`, and `prop_map`.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking; a
/// strategy is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }
}

/// Strategy yielding a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Adapter returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = rng.below(width as u64);
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let off = if width > u64::MAX as u128 {
                    rng.next_u64()
                } else {
                    rng.below(width as u64)
                };
                (start as i128 + off as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($s:ident.$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_ranges_cover_negatives() {
        let mut rng = TestRng::deterministic("signed", 0);
        let mut saw_negative = false;
        for _ in 0..500 {
            let v = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
            saw_negative |= v < 0;
        }
        assert!(saw_negative);
    }

    #[test]
    fn full_width_inclusive_range_works() {
        let mut rng = TestRng::deterministic("full", 0);
        let strat = 0u64..=u64::MAX;
        let a = strat.generate(&mut rng);
        let b = strat.generate(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = TestRng::deterministic("empty", 0);
        let _ = (5u32..5).generate(&mut rng);
    }
}
