//! Deterministic test-case RNG, runner configuration, and failure type.

/// Runner configuration; only `cases` is honoured by this stand-in.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed (or rejected) test case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fail the current case with `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }

    /// Alias of [`TestCaseError::fail`] kept for API familiarity.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::fail(reason)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG (xoshiro256++ seeded via SplitMix64 from a label
/// hash and case index). Same `(label, case)` always yields the same
/// stream, so failures reproduce without persisted seeds.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG for one case of the property named by `label`.
    pub fn deterministic(label: &str, case: u32) -> Self {
        // FNV-1a over the label, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        let mut seed = h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let s = [
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
        ];
        TestRng { s }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)` via 128-bit multiply-shift.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_and_case_repeat() {
        let mut a = TestRng::deterministic("x", 3);
        let mut b = TestRng::deterministic("x", 3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_cases_diverge() {
        let mut a = TestRng::deterministic("x", 0);
        let mut b = TestRng::deterministic("x", 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_is_bounded() {
        let mut rng = TestRng::deterministic("below", 0);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut rng = TestRng::deterministic("unit", 0);
        for _ in 0..10_000 {
            let f = rng.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
