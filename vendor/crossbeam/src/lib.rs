//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::thread::scope` with the crossbeam calling
//! convention (`scope.spawn(|scope| ...)`, `scope(..)` returning a
//! `Result`) implemented on top of `std::thread::scope`.

#![warn(missing_docs)]

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Error payload from a panicked scope, matching crossbeam's alias.
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// Handle for spawning threads tied to the enclosing scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; the closure receives the scope so it
        /// can spawn further threads, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, ScopeError> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope whose spawned threads are all joined before
    /// this returns. Returns `Err` with the panic payload if the
    /// closure or an un-joined spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn spawned_threads_see_borrowed_state() {
            let counter = AtomicUsize::new(0);
            let counter = &counter;
            let total: usize = super::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|i| {
                        scope.spawn(move |_| {
                            counter.fetch_add(1, Ordering::SeqCst);
                            i * 10
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .expect("crossbeam scope");
            assert_eq!(counter.load(Ordering::SeqCst), 4);
            assert_eq!(total, 60);
        }

        #[test]
        fn nested_spawn_through_scope_arg() {
            let hits = AtomicUsize::new(0);
            super::scope(|scope| {
                scope.spawn(|inner| {
                    inner.spawn(|_| {
                        hits.fetch_add(1, Ordering::SeqCst);
                    });
                });
            })
            .expect("crossbeam scope");
            assert_eq!(hits.load(Ordering::SeqCst), 1);
        }

        #[test]
        fn panicked_thread_yields_err() {
            let r = super::scope(|scope| {
                scope.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
