//! Offline stand-in for `serde`.
//!
//! Exposes `Serialize` / `Deserialize` as both marker traits and no-op
//! derive macros so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged without network
//! access. No serializer ships with this stand-in; in-tree JSON I/O lives
//! in `multimap-conformance`.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
